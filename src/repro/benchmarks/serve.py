"""Benchmark: batched serving vs a per-request exhaustive re-sweep.

The ``repro.serve`` claim is architectural: answering ``recommend``
queries from a digest-keyed frontier cache plus a micro-batched compute
path is at least 20x faster than what the CLI did before the service
existed — re-running ``recommend_exhaustive`` from a cold
operating-point cache for every query.  This benchmark times both arms
on the *same seeded query plan*:

* **resweep** — the pre-service baseline: for each planned query,
  ``clear_constants_cache()`` then one ``recommend_exhaustive`` pass
  over the full space (every query pays the sweep, like a fresh
  ``repro recommend`` process),
* **served** — a closed-loop :func:`repro.serve.loadgen.run_loadgen`
  run against an in-process :class:`repro.serve.service.ReproService`
  (cache hits answered from the deadline staircase).

Both arms draw their deadlines from the identically seeded
``serve/loadgen`` stream, so the served arm's first ``resweep_requests``
queries are exactly the baseline's plan.  Besides the throughput ratio
(the ``speedup.batched_vs_resweep`` floor), the envelope records both
arms' client-side p50/p95 so the "at equal p95" part of the claim is a
recorded number, not an assumption.

A third measurement prices request-level observability: two warm
services answer the identical seeded plan, one with full trace sampling
(``trace_sample=1.0``) and one with request tracing disabled, and
``instrumentation.overhead_ratio`` is the best-of-rounds wall ratio —
the CI gate holds it under 1.15x.  Run as a console entry::

    python -m repro.benchmarks.serve [--output BENCH_serve.json]

"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.configuration import TypeSpace
from repro.cluster.pareto import pareto_indices
from repro.cluster.search import recommend_exhaustive
from repro.errors import ModelError, ReproError
from repro.hardware.specs import get_node_spec
from repro.model.batched import clear_constants_cache, evaluate_space_arrays
from repro.obs import get_registry, instrumented
from repro.obs.timer import bench_envelope, write_bench_json
from repro.util.rng import DEFAULT_SEED, RngRegistry
from repro.workloads.suite import paper_workloads

__all__ = ["run_benchmark", "main"]


def _serve_spaces(max_wimpy: int, max_brawny: int) -> List[TypeSpace]:
    """The serving configuration space (mirrors the service defaults)."""
    return [
        TypeSpace(get_node_spec("A9"), n_max=max_wimpy),
        TypeSpace(get_node_spec("K10"), n_max=max_brawny),
    ]


def _frontier_tp_ranges(
    workload_names: Sequence[str], spaces: Sequence[TypeSpace]
) -> Dict[str, Tuple[float, float]]:
    """Each workload's Pareto-frontier execution-time range, offline.

    The same range the service's ``/frontier`` endpoint reports and the
    load generator's priming pass reads — computed here without a server
    so the baseline arm can replay the identical seeded deadline draws.
    """
    suite = paper_workloads()
    ranges: Dict[str, Tuple[float, float]] = {}
    for name in workload_names:
        if name not in suite:
            raise ModelError(
                f"unknown paper workload {name!r}; expected one of {tuple(suite)}"
            )
        arrays = evaluate_space_arrays(suite[name], spaces)
        frontier = pareto_indices(arrays.tp_s, arrays.energy_j)
        tp = arrays.tp_s[frontier]
        ranges[name] = (float(tp.min()), float(tp.max()))
    return ranges


def _tracing_overhead(
    *,
    workloads: Sequence[str],
    clients: int,
    seed: int,
    rounds: int = 3,
    requests: int = 400,
) -> Dict[str, object]:
    """Wall-clock ratio of full tracing vs tracing disabled, best of rounds.

    Both arms boot a warm service over a deliberately small space (so the
    precompute sweep is cheap and every planned query is a cache hit) and
    answer the identical seeded closed-loop plan; the only difference is
    ``trace_sample=1.0`` vs ``request_tracing=False``.  Best-of-rounds
    absorbs scheduler noise, mirroring the scheduler benchmark's gate.
    """
    import asyncio

    from repro.serve.loadgen import run_loadgen
    from repro.serve.service import ReproService, ServeConfig

    # The service precomputes its *default* space at startup; querying the
    # same space keeps every planned request a warm cache hit, so the two
    # arms time the request path itself, not the sweep.
    space_params = {"max_wimpy": 6, "max_brawny": 3}

    async def _arm(tracing: bool) -> float:
        service = ReproService(
            ServeConfig(
                precompute=tuple(workloads),
                request_tracing=tracing,
                trace_sample=1.0,
            )
        )
        await service.start()
        try:
            result = await run_loadgen(
                service.host,
                service.port,
                mode="closed",
                clients=clients,
                total_requests=requests,
                workloads=tuple(workloads),
                space=space_params,
                seed=seed,
            )
        finally:
            await service.close()
        if result.errors or result.completed != result.attempted:
            raise ReproError(
                f"overhead arm did not complete cleanly: {result.statuses}"
            )
        return result.wall_s

    ratios: List[float] = []
    traced_walls: List[float] = []
    untraced_walls: List[float] = []
    for _ in range(rounds):
        traced = asyncio.run(_arm(True))
        untraced = asyncio.run(_arm(False))
        traced_walls.append(traced)
        untraced_walls.append(untraced)
        ratios.append(traced / untraced)
    return {
        "overhead_ratio": float(min(ratios)),
        "overhead_ratios": [float(r) for r in ratios],
        "rounds": rounds,
        "requests_per_arm": requests,
        "traced_wall_s": [float(w) for w in traced_walls],
        "untraced_wall_s": [float(w) for w in untraced_walls],
    }


def run_benchmark(
    *,
    workloads: Sequence[str] = ("EP", "memcached"),
    served_requests: int = 400,
    resweep_requests: int = 40,
    clients: int = 8,
    max_wimpy: int = 10,
    max_brawny: int = 10,
    seed: int = DEFAULT_SEED,
) -> Dict[str, object]:
    """Time the per-request re-sweep baseline against batched serving.

    Returns a JSON-serialisable ``repro-bench/1`` envelope.  Both arms
    answer queries over the paper's footnote-4 space (10 A9 + 10 K10,
    36,380 configurations — the space ``BENCH_sweep.json`` pins), so the
    baseline is the canonical full-sweep cost per query.  The baseline
    arm runs fewer requests than the served arm (a cold re-sweep per
    query dominates the runtime); throughputs are rates, so the arms
    remain directly comparable.
    """
    if served_requests < 1 or resweep_requests < 1:
        raise ReproError("both arms need at least one request")
    from repro.serve.loadgen import _build_plan, loadgen_scalars, run_loadgen
    from repro.serve.service import ReproService, ServeConfig

    suite = paper_workloads()
    spaces = _serve_spaces(max_wimpy, max_brawny)
    space_params = {"max_wimpy": max_wimpy, "max_brawny": max_brawny}
    tp_ranges = _frontier_tp_ranges(workloads, spaces)

    # Baseline arm: the identically seeded plan prefix, each query paying
    # a full cold sweep — what `repro recommend` per query used to cost.
    rng = RngRegistry(seed).stream("serve/loadgen")
    plan = _build_plan(rng, resweep_requests, list(workloads), tp_ranges, space_params)
    per_request_s: List[float] = []
    for body in plan:
        clear_constants_cache()
        t0 = perf_counter()
        recommend_exhaustive(
            suite[str(body["workload"])], spaces, deadline_s=float(body["deadline_s"])
        )
        per_request_s.append(perf_counter() - t0)
    resweep_total_s = float(sum(per_request_s))
    resweep_rps = resweep_requests / resweep_total_s
    resweep_lat = np.asarray(per_request_s)

    # Served arm: closed-loop load against an in-process service, with
    # the registry live so the metrics sidecar captures the serve counters.
    async def _served():
        service = ReproService(
            ServeConfig(precompute=tuple(workloads), slo_p95_s=0.25)
        )
        await service.start()
        try:
            result = await run_loadgen(
                service.host,
                service.port,
                mode="closed",
                clients=clients,
                total_requests=served_requests,
                workloads=tuple(workloads),
                space=space_params,
                seed=seed,
            )
            recorder = service.recorder
            obs: Dict[str, object] = {
                "slo": recorder.slo_stats(),
                "sampler": recorder.sampler.stats(),
                "stages": recorder.stage_breakdown(),
            }
            slowest = recorder.flight.slowest()
            if slowest is not None:
                from repro.obs.request import span_coverage

                obs["slowest_kept"] = {
                    "request_id": slowest.request_id,
                    "endpoint": slowest.endpoint,
                    "wall_s": slowest.wall_s,
                    "coverage": span_coverage(slowest.to_dict()),
                }
            return result, service.summary_scalars(), obs
        finally:
            await service.close()

    import asyncio

    with instrumented():
        result, summary, observability = asyncio.run(_served())
        metrics = get_registry().snapshot()
    if result.errors or result.completed != result.attempted:
        raise ReproError(
            f"served arm did not complete cleanly: {result.statuses}"
        )

    instrumentation = _tracing_overhead(
        workloads=workloads, clients=clients, seed=seed
    )

    return bench_envelope(
        "serve",
        {
            "workloads": list(workloads),
            "served_requests": served_requests,
            "resweep_requests": resweep_requests,
            "clients": clients,
            "max_wimpy": max_wimpy,
            "max_brawny": max_brawny,
            "seed": seed,
        },
        {
            "resweep_total": resweep_total_s,
            "served_wall": result.wall_s,
        },
        resweep={
            "requests": resweep_requests,
            "throughput_rps": resweep_rps,
            "p50_latency_s": float(np.percentile(resweep_lat, 50.0)),
            "p95_latency_s": float(np.percentile(resweep_lat, 95.0)),
        },
        served={**loadgen_scalars(result), "server": summary},
        speedup={"batched_vs_resweep": result.throughput_rps / resweep_rps},
        instrumentation=instrumentation,
        observability=observability,
        metrics=metrics,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point: run the serving benchmark and write JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchmarks.serve",
        description="Time batched serving vs a per-request exhaustive re-sweep.",
    )
    parser.add_argument(
        "--workloads",
        default="EP,memcached",
        help="comma-separated paper workloads (default: %(default)s)",
    )
    parser.add_argument("--requests", type=int, default=400, help="served arm size")
    parser.add_argument(
        "--resweep-requests", type=int, default=40, help="baseline arm size"
    )
    parser.add_argument("--clients", type=int, default=8, help="closed-loop clients")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="plan seed")
    parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="result JSON path (default: ./BENCH_serve.json)",
    )
    args = parser.parse_args(argv)

    try:
        result = run_benchmark(
            workloads=tuple(w.strip() for w in args.workloads.split(",") if w.strip()),
            served_requests=args.requests,
            resweep_requests=args.resweep_requests,
            clients=args.clients,
            seed=args.seed,
        )
    except (ModelError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sidecar = write_bench_json(args.output, result)

    resweep = result["resweep"]
    served = result["served"]
    print(
        f"re-sweep baseline: {resweep['throughput_rps']:.1f} req/s "
        f"(p95 {resweep['p95_latency_s'] * 1e3:.1f} ms)"
    )
    print(
        f"batched serving:   {served['throughput_rps']:.1f} req/s "
        f"(p95 {served['p95_latency_s'] * 1e3:.2f} ms)"
    )
    print(f"speedup: {result['speedup']['batched_vs_resweep']:.0f}x")
    print(
        "tracing overhead: "
        f"{result['instrumentation']['overhead_ratio']:.3f}x "
        "(full sampling vs tracing off, best of "
        f"{result['instrumentation']['rounds']})"
    )
    print(f"wrote {args.output}" + (f" (+ {sidecar})" if sidecar else ""))
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry
    sys.exit(main())
