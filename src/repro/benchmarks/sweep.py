"""Benchmark: scalar oracle vs batched engine on the footnote-4 space.

Times three ways of scoring the paper's full configuration space (10 A9 +
10 K10 with every core/DVFS choice, 36,380 configurations):

* **scalar** — ``evaluate_configuration`` looped over
  ``enumerate_configurations`` (the oracle path),
* **batched** — ``evaluate_space_arrays`` in one broadcasted pass, timed
  cold (empty operating-point constants cache) and warm,
* **materialised** — ``evaluate_space``, the batched pass plus
  ``ConfigEvaluation`` construction for every configuration.

It also cross-checks the batched arrays against the scalar results on
every configuration and records the worst relative disagreement — the
engine's contract is <= 1e-9.  Run as a console entry::

    python -m repro.benchmarks.sweep [--output BENCH_sweep.json]

"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.cluster.configuration import (
    TypeSpace,
    count_configurations,
    enumerate_configurations,
)
from repro.cluster.pareto import evaluate_configuration, evaluate_space
from repro.errors import ModelError
from repro.hardware.specs import get_node_spec
from repro.model.batched import clear_constants_cache, evaluate_space_arrays
from repro.obs import get_registry, instrumented
from repro.obs.timer import bench_envelope, measure, write_bench_json
from repro.workloads.suite import paper_workloads

__all__ = ["paper_spaces", "run_benchmark", "main"]


def paper_spaces(n_a9: int = 10, n_k10: int = 10) -> List[TypeSpace]:
    """The paper's footnote-4 configuration space (all cores and DVFS)."""
    return [
        TypeSpace(get_node_spec("A9"), n_max=n_a9),
        TypeSpace(get_node_spec("K10"), n_max=n_k10),
    ]


def run_benchmark(
    workload_name: str = "EP",
    *,
    n_a9: int = 10,
    n_k10: int = 10,
    warm_repeats: int = 5,
) -> Dict[str, object]:
    """Time the scalar and batched sweeps and verify their agreement.

    Returns a JSON-serialisable result dictionary in the shared
    ``repro-bench/1`` envelope; the scalar pass runs once (it dominates
    the runtime), the warm batched pass reports the minimum over
    ``warm_repeats`` runs after one explicit warmup run.
    """
    suite = paper_workloads()
    if workload_name not in suite:
        raise ModelError(
            f"unknown paper workload {workload_name!r}; "
            f"expected one of {tuple(suite)}"
        )
    workload = suite[workload_name]
    spaces = paper_spaces(n_a9, n_k10)
    n_configs = count_configurations(spaces)

    scalar, t_scalar = measure(
        lambda: [
            evaluate_configuration(workload, config)
            for config in enumerate_configurations(spaces)
        ],
        repeats=1,
        warmup=0,
    )

    clear_constants_cache()
    arrays, t_cold = measure(
        lambda: evaluate_space_arrays(workload, spaces), repeats=1, warmup=0
    )
    arrays, t_warm = measure(
        lambda: evaluate_space_arrays(workload, spaces),
        repeats=max(warm_repeats, 1),
        warmup=1,
    )
    materialised, t_mat = measure(
        lambda: evaluate_space(workload, spaces), repeats=1, warmup=0
    )

    if len(scalar) != arrays.n_configs or len(materialised) != n_configs:
        raise AssertionError("scalar and batched spaces differ in size")
    tp_err = energy_err = peak_err = 0.0
    for i, ev in enumerate(scalar):
        tp_err = max(tp_err, abs(arrays.tp_s[i] / ev.tp_s - 1.0))
        energy_err = max(energy_err, abs(arrays.energy_j[i] / ev.energy_j - 1.0))
        peak_err = max(peak_err, abs(arrays.peak_power_w[i] / ev.peak_power_w - 1.0))

    # One instrumented batched pass feeds the metrics sidecar (cache
    # counters, configs/s gauge); it plays no part in the timings above.
    with instrumented():
        evaluate_space_arrays(workload, spaces)
        metrics = get_registry().snapshot()

    scalar_s = t_scalar.best_s
    return bench_envelope(
        "sweep",
        {
            "workload": workload_name,
            "n_a9": n_a9,
            "n_k10": n_k10,
            "warm_repeats": t_warm.repeats,
            "warmup": t_warm.warmup,
        },
        {
            "scalar": scalar_s,
            "batched_cold": t_cold.best_s,
            "batched_warm": t_warm.best_s,
            "materialised": t_mat.best_s,
        },
        workload=workload_name,
        space={"n_a9": n_a9, "n_k10": n_k10, "configs": n_configs},
        speedup={
            "batched_cold": scalar_s / t_cold.best_s,
            "batched_warm": scalar_s / t_warm.best_s,
            "materialised": scalar_s / t_mat.best_s,
        },
        max_rel_error={
            "tp_s": tp_err,
            "energy_j": energy_err,
            "peak_power_w": peak_err,
        },
        metrics=metrics,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point: run the sweep benchmark and write JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchmarks.sweep",
        description="Time the scalar vs batched configuration-space sweep.",
    )
    parser.add_argument("--workload", default="EP", help="paper workload name")
    parser.add_argument("--n-a9", type=int, default=10, help="A9 node maximum")
    parser.add_argument("--n-k10", type=int, default=10, help="K10 node maximum")
    parser.add_argument(
        "--output",
        default="BENCH_sweep.json",
        help="result JSON path (default: ./BENCH_sweep.json)",
    )
    args = parser.parse_args(argv)

    try:
        result = run_benchmark(args.workload, n_a9=args.n_a9, n_k10=args.n_k10)
    except ModelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sidecar = write_bench_json(args.output, result)

    timings = result["timings_s"]
    speedup = result["speedup"]
    errors = result["max_rel_error"]
    print(f"configuration space: {result['space']['configs']} configs")
    print(f"scalar oracle:   {timings['scalar']:.3f} s")
    print(
        f"batched engine:  {timings['batched_cold']:.3f} s cold / "
        f"{timings['batched_warm']:.3f} s warm "
        f"({speedup['batched_warm']:.0f}x)"
    )
    print(
        f"materialised:    {timings['materialised']:.3f} s "
        f"({speedup['materialised']:.0f}x)"
    )
    print(
        "max relative error: "
        f"tp {errors['tp_s']:.2e}, energy {errors['energy_j']:.2e}, "
        f"peak {errors['peak_power_w']:.2e}"
    )
    print(f"wrote {args.output}" + (f" (+ {sidecar})" if sidecar else ""))
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry
    sys.exit(main())
