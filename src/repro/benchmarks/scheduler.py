"""Benchmark: event throughput of the online scheduling engine.

The engine's lazy event treatment (per-node clearing times instead of a
global event heap, completions popped only when a policy looks) is what
keeps a day's replay inside a unit-test budget.  This benchmark times the
full study replay — every dispatch policy over one diurnal day, plus the
fixed-mix contrast runs — and reports the aggregate event rate, where an
*event* is one dispatched job or one control tick.

Run as a console entry::

    python -m repro.benchmarks.scheduler [--output BENCH_scheduler.json]

"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from repro.experiments.scheduling import replay_day, run_scheduling_study
from repro.obs import get_registry, instrumented
from repro.obs.timer import bench_envelope, measure, write_bench_json
from repro.parallel.pool import resolve_workers
from repro.util.rng import DEFAULT_SEED

__all__ = ["run_benchmark", "main"]


def _sharded_arm(seed: int, n_intervals: int, workers: int) -> Dict[str, object]:
    """Time one sharded EP/ppr-greedy replay at ``workers`` workers and
    check worker-count invariance (workers=1 vs workers=N, same shard
    plan) on the telemetry the merge produces."""
    run_sharded = lambda w: replay_day(  # noqa: E731
        "EP",
        "ppr-greedy",
        seed=seed,
        n_intervals=n_intervals,
        shards=workers,
        workers=w,
    )
    (result, _), t_par = measure(lambda: run_sharded(workers), repeats=1, warmup=0)
    (serial, _), _ = measure(lambda: run_sharded(1), repeats=1, warmup=0)
    bit_identical = (
        serial.total_energy_j == result.total_energy_j
        and serial.p50_s == result.p50_s
        and serial.p95_s == result.p95_s
        and serial.p99_s == result.p99_s
        and serial.boots == result.boots
        and serial.shutdowns == result.shutdowns
        and serial.timeline == result.timeline
    )
    return {
        "workload": "EP",
        "policy": "ppr-greedy",
        "n_shards": workers,
        "workers": workers,
        "replay_s": t_par.best_s,
        "jobs": result.jobs_arrived,
        "bit_identical": bool(bit_identical),
    }


def run_benchmark(
    *,
    seed: int = DEFAULT_SEED,
    n_intervals: int = 24,
    repeats: int = 3,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """Time the full scheduling study; returns a JSON-serialisable dict in
    the shared ``repro-bench/1`` envelope.

    ``events`` counts every dispatched job and every control tick across
    all runs of one study; the reported rate is events over the *minimum*
    wall time of ``repeats`` study executions (the usual noise shield).
    The headline rate is measured with observability *disabled*.  Each
    round also times one *instrumented* study back-to-back with the plain
    one, and ``instrumentation.overhead_ratio`` reports the best of the
    per-round paired ratios — pairing cancels the machine-state drift
    that would otherwise masquerade as phantom overhead when the two arms
    are measured minutes apart.  The instrumented runs' metrics snapshot
    feeds the sidecar; the ratio pins the obs layer's <= 5% overhead
    contract.
    """
    run = lambda: run_scheduling_study(seed, n_intervals=n_intervals)  # noqa: E731
    plain_s = []
    instr_s = []
    study = None
    metrics: Dict[str, object] = {}
    for _ in range(max(repeats, 1)):
        study, t_plain = measure(run, repeats=1, warmup=0)
        plain_s.append(t_plain.best_s)
        with instrumented():
            _, t_instr = measure(run, repeats=1, warmup=0)
            metrics = get_registry().snapshot()
        instr_s.append(t_instr.best_s)
    best_s = min(plain_s)
    instrumented_s = min(instr_s)
    ratios = sorted(i / p for i, p in zip(instr_s, plain_s))
    # Best paired ratio — the same min-as-noise-shield convention as the
    # headline timing; the full list is recorded alongside it.
    overhead_ratio = ratios[0]

    jobs = sum(
        o.jobs_arrived for c in study.comparisons for o in c.outcomes
    )
    runs = sum(len(c.outcomes) for c in study.comparisons)
    # Section 2 replays: two mixes x two workloads, plus rr-vs-ppr (2 runs).
    runs += 2 * len(study.contrasts) + 2
    ticks = runs * n_intervals
    events = jobs + ticks

    import os

    n_workers = resolve_workers(workers)
    extra: Dict[str, object] = {}
    if n_workers > 1:
        extra["sharded"] = _sharded_arm(seed, n_intervals, n_workers)
    return bench_envelope(
        "scheduler",
        {
            "seed": seed,
            "n_intervals": n_intervals,
            "repeats": len(plain_s),
            "workers": n_workers,
            "cpus_available": os.cpu_count(),
        },
        {
            "study_best": best_s,
            "study_mean": sum(plain_s) / len(plain_s),
            "study_instrumented": instrumented_s,
        },
        counts={
            "engine_runs": runs,
            "jobs_dispatched_autoscaled": jobs,
            "control_ticks": ticks,
            "events": events,
        },
        events_per_s=events / best_s,
        instrumentation={
            "overhead_ratio": overhead_ratio,
            "paired_ratios": ratios,
            "events_per_s_instrumented": events / instrumented_s,
        },
        metrics=metrics,
        **extra,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point: run the scheduler benchmark and write JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchmarks.scheduler",
        description="Time the online scheduling engine's study replay.",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--intervals", type=int, default=24)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the sharded-replay arm (0 = all CPUs); "
            "the sharded result is bit-identical at any worker count"
        ),
    )
    parser.add_argument(
        "--output",
        default="BENCH_scheduler.json",
        help="result JSON path (default: ./BENCH_scheduler.json)",
    )
    args = parser.parse_args(argv)
    result = run_benchmark(
        seed=args.seed,
        n_intervals=args.intervals,
        repeats=args.repeats,
        workers=args.workers,
    )
    sidecar = write_bench_json(args.output, result)
    overhead = result["instrumentation"]["overhead_ratio"]
    sharded = result.get("sharded")
    if sharded:
        print(
            f"sharded arm: {sharded['n_shards']} shards x "
            f"{sharded['workers']} workers, {sharded['jobs']} jobs in "
            f"{sharded['replay_s']:.3f}s, bit-identical to workers=1: "
            f"{sharded['bit_identical']}",
            file=sys.stderr,
        )
    print(
        f"{result['counts']['events']} events in "
        f"{result['timings_s']['study_best']:.3f}s -> "
        f"{result['events_per_s']:.0f} events/s "
        f"(instrumented x{overhead:.3f})  [{args.output}"
        + (f" + {sidecar}]" if sidecar else "]"),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry
    raise SystemExit(main())
