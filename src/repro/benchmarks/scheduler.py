"""Benchmark: event throughput of the online scheduling engine.

The engine's lazy event treatment (per-node clearing times instead of a
global event heap, completions popped only when a policy looks) is what
keeps a day's replay inside a unit-test budget.  This benchmark times the
full study replay — every dispatch policy over one diurnal day, plus the
fixed-mix contrast runs — and reports the aggregate event rate, where an
*event* is one dispatched job or one control tick.

Run as a console entry::

    python -m repro.benchmarks.scheduler [--output BENCH_scheduler.json]

"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional, Sequence

from repro.experiments.scheduling import run_scheduling_study
from repro.util.rng import DEFAULT_SEED

__all__ = ["run_benchmark", "main"]


def run_benchmark(
    *,
    seed: int = DEFAULT_SEED,
    n_intervals: int = 24,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time the full scheduling study; returns a JSON-serialisable dict.

    ``events`` counts every dispatched job and every control tick across
    all runs of one study; the reported rate is events over the *minimum*
    wall time of ``repeats`` study executions (the usual noise shield).
    """
    best_s = float("inf")
    study = None
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        study = run_scheduling_study(seed, n_intervals=n_intervals)
        best_s = min(best_s, time.perf_counter() - t0)

    jobs = sum(
        o.jobs_arrived for c in study.comparisons for o in c.outcomes
    )
    runs = sum(len(c.outcomes) for c in study.comparisons)
    # Section 2 replays: two mixes x two workloads, plus rr-vs-ppr (2 runs).
    runs += 2 * len(study.contrasts) + 2
    ticks = runs * n_intervals
    events = jobs + ticks
    return {
        "params": {
            "seed": seed,
            "n_intervals": n_intervals,
            "repeats": repeats,
        },
        "counts": {
            "engine_runs": runs,
            "jobs_dispatched_autoscaled": jobs,
            "control_ticks": ticks,
            "events": events,
        },
        "timings_s": {"study_best": best_s},
        "events_per_s": events / best_s,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point: run the scheduler benchmark and write JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchmarks.scheduler",
        description="Time the online scheduling engine's study replay.",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--intervals", type=int, default=24)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output",
        default="BENCH_scheduler.json",
        help="result JSON path (default: ./BENCH_scheduler.json)",
    )
    args = parser.parse_args(argv)
    result = run_benchmark(
        seed=args.seed, n_intervals=args.intervals, repeats=args.repeats
    )
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(
        f"{result['counts']['events']} events in "
        f"{result['timings_s']['study_best']:.3f}s -> "
        f"{result['events_per_s']:.0f} events/s  [{args.output}]",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry
    raise SystemExit(main())
