"""Runnable performance benchmarks for the library's sweep engines.

Unlike ``benchmarks/`` at the repository root (pytest-benchmark harness
regenerating paper artefacts), this package holds plain console entry
points usable without pytest::

    python -m repro.benchmarks.sweep

"""

from __future__ import annotations

__all__: list = []
