"""Declarative claim monitors: the paper's load-bearing numbers as SLOs.

The reproduction's headline claims are asserted once each, scattered
across the test suite: the M/D/1-vs-Monte-Carlo agreement lives in the
validation grid tests, the Table 6 PPR winners in the calibration tests,
the Fig. 9 contrast and Pareto sub-linearity in the benchmarks, the
scheduler's oracle gap in the scheduling study tests.  This module
restates each claim as a *monitor*: a named, declarative check with a
derivation function (re-running a deliberately small but real slice of
the experiment) and explicit tolerance bands, evaluated together by
``repro obs check`` and recorded to the run ledger so the claims are
watched continuously rather than asserted once.

The eight monitors and their claims:

* ``md1-mc-agreement`` — the analytic M/D/1 p95 must fall inside the
  simulated 99% CI on (almost) every cell of a reduced EP validation
  grid.  One cell of twenty may flag by chance at the 99% level, so the
  band is ``agreement_fraction >= 0.9``, not 1.0.
* ``table6-ppr-winners`` — the calibrated model must reproduce the
  paper's per-workload PPR winner (the argmax of the published Table 6
  values) for all six workloads.  Exact: ``match_fraction == 1.0``.
* ``fig9-mix-contrast`` — serving the same absolute load on the wimpy
  Pareto mix (25 A9 : 5 K10) instead of the reference (32 A9 : 12 K10)
  degrades EP's p95 by ~x1.03 but x264's by ~x11 (Fig. 9's story).
* ``pareto-sublinearity`` — the Pareto mixes' power curves cross below
  the reference ideal line, earlier the fewer K10s: crossovers exist,
  decrease monotonically, with (25, 7) sub-linear by 75% utilisation
  and (25, 5) by 50% (Section III-D).
* ``scheduler-oracle-gap`` — the online ``ppr-greedy`` scheduler's
  energy stays within 5% of the offline adaptation oracle on every
  study workload.
* ``robustness-heavytail-gap`` — the same day replayed with Pareto
  (alpha = 2.2) heavy-tailed service multipliers: the oracle keeps
  assuming the deterministic fluid model, yet ``ppr-greedy`` stays
  within 10% of it (the paper's energy ranking is robust to the
  service-time assumption).
* ``robustness-bursty-contrast`` — the Fig. 9 mix contrast replayed
  under MMPP (bursty) arrivals: burstiness *amplifies* the paper's
  asymmetry — EP's p95 is no longer preserved on the wimpy mix
  (several x worse) and x264's degradation grows by an order of
  magnitude (the Fig. 9 conclusion is arrival-process *sensitive* in a
  banded, reproducible way).
* ``serving-slo`` — the always-on service (:mod:`repro.serve`) under a
  seeded closed-loop reference load: client-side p95 stays under the
  service SLO, every request completes, and every cache-hit answer is
  bit-identical to a fresh offline
  :func:`repro.cluster.search.recommend_exhaustive` for the same
  configuration digest.

Every derivation is seeded (default :data:`repro.util.rng.DEFAULT_SEED`)
and deterministic, so a monitor that goes red marks a real behaviour
change, not noise.  The whole suite evaluates in a few seconds — cheap
enough to run after tier-1 in CI.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.ledger import Ledger, default_ledger, ledger_enabled, new_record
from repro.util.rng import DEFAULT_SEED

__all__ = [
    "Band",
    "CheckOutcome",
    "ClaimMonitor",
    "MonitorResult",
    "MONITORS",
    "monitor_names",
    "run_monitors",
    "render_monitor_report",
]


@dataclass(frozen=True)
class Band:
    """A closed tolerance band ``[lo, hi]``; NaN never passes."""

    lo: float
    hi: float

    def contains(self, value: float) -> bool:
        return not math.isnan(value) and self.lo <= value <= self.hi

    def __str__(self) -> str:
        if self.lo == self.hi:
            return f"== {self.lo:g}"
        if self.lo == -math.inf:
            return f"<= {self.hi:g}"
        if self.hi == math.inf:
            return f">= {self.lo:g}"
        return f"[{self.lo:g}, {self.hi:g}]"


@dataclass(frozen=True)
class CheckOutcome:
    """One scalar judged against its band."""

    scalar: str
    value: float
    band: Band

    @property
    def passed(self) -> bool:
        return self.band.contains(self.value)


@dataclass(frozen=True)
class MonitorResult:
    """One monitor's evaluation: derived scalars, per-band verdicts."""

    name: str
    claim: str
    scalars: Dict[str, float]
    checks: Tuple[CheckOutcome, ...]
    wall_s: float
    seed: int

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failed_checks(self) -> Tuple[CheckOutcome, ...]:
        return tuple(c for c in self.checks if not c.passed)


@dataclass(frozen=True)
class ClaimMonitor:
    """A named claim: a seeded derivation plus tolerance bands.

    ``derive(seed)`` re-computes the claim's scalars; ``bands`` maps the
    scalar names the claim is judged on to their tolerance bands.  Every
    banded scalar must be produced by the derivation — a missing scalar
    evaluates as NaN and fails its band, so a monitor cannot silently
    pass by not computing its number.
    """

    name: str
    claim: str
    derive: Callable[[int], Dict[str, float]]
    bands: Dict[str, Band]

    def evaluate(self, *, seed: int = DEFAULT_SEED) -> MonitorResult:
        t0 = time.perf_counter()
        scalars = {k: float(v) for k, v in self.derive(seed).items()}
        wall = time.perf_counter() - t0
        checks = tuple(
            CheckOutcome(
                scalar=key,
                value=scalars.get(key, math.nan),
                band=band,
            )
            for key, band in self.bands.items()
        )
        return MonitorResult(
            name=self.name,
            claim=self.claim,
            scalars=scalars,
            checks=checks,
            wall_s=wall,
            seed=seed,
        )


# -- derivations ----------------------------------------------------------
# Each re-runs a small but real slice of the experiment it guards; the
# heavy experiment imports stay inside the functions so importing this
# module (e.g. for `repro obs report`) costs nothing.


def _derive_md1_mc_agreement(seed: int) -> Dict[str, float]:
    from repro.experiments.validation_mc import report_scalars, run_validation

    report = run_validation(
        workloads=("EP",), n_jobs=4000, n_reps=15, seed=seed
    )
    return report_scalars(report)


def _derive_ppr_winners(seed: int) -> Dict[str, float]:
    del seed  # the PPR ranking is deterministic calibration output
    from repro.experiments.sensitivity import ppr_winner
    from repro.workloads.suite import PAPER_PPR, paper_workloads

    suite = paper_workloads()
    matches = 0
    for name, w in suite.items():
        expected = max(PAPER_PPR[name], key=lambda node: PAPER_PPR[name][node])
        matches += int(ppr_winner(w) == expected)
    return {
        "match_fraction": matches / len(suite),
        "n_workloads": float(len(suite)),
    }


def _derive_mix_contrast(seed: int) -> Dict[str, float]:
    from repro.experiments.scheduling import run_mix_contrast

    out: Dict[str, float] = {}
    for c in run_mix_contrast(("EP", "x264"), seed=seed):
        out[f"{c.workload.lower()}_degradation"] = c.degradation
    return out


def _derive_pareto_sublinearity(seed: int) -> Dict[str, float]:
    del seed  # pure power-model property, no randomness involved
    from repro.cluster.configuration import ClusterConfiguration
    from repro.core.proportionality import power_curve, sublinear_crossover
    from repro.workloads.suite import paper_workloads

    w = paper_workloads()["EP"]
    ref_peak = power_curve(
        w, ClusterConfiguration.mix({"A9": 32, "K10": 12})
    ).peak_w
    crossovers: Dict[int, Optional[float]] = {}
    for k in (10, 8, 7, 5):
        curve = power_curve(w, ClusterConfiguration.mix({"A9": 25, "K10": k}))
        crossovers[k] = sublinear_crossover(curve, reference_peak_w=ref_peak)
    values = {
        f"crossover_25_{k}": (v if v is not None else math.nan)
        for k, v in crossovers.items()
    }
    ordered = [values[f"crossover_25_{k}"] for k in (5, 7, 8, 10)]
    monotone = float(
        all(not math.isnan(v) for v in ordered)
        and all(a < b for a, b in zip(ordered, ordered[1:]))
    )
    values["monotone"] = monotone
    return values


def _derive_scheduler_oracle_gap(seed: int) -> Dict[str, float]:
    from repro.experiments.scheduling import STUDY_WORKLOADS, replay_day

    out: Dict[str, float] = {}
    gaps: List[float] = []
    for name in STUDY_WORKLOADS:
        result, oracle = replay_day(name, seed=seed)
        gap = result.total_energy_j / oracle.dynamic_energy_j - 1.0
        out[f"{name.lower()}_gap"] = gap
        gaps.append(gap)
    out["max_gap"] = max(gaps)
    return out


def _derive_heavytail_oracle_gap(seed: int) -> Dict[str, float]:
    from repro.experiments.scheduling import STUDY_WORKLOADS, replay_day
    from repro.queueing.processes import ParetoService

    model = ParetoService(1.0, tail_index=2.2)
    out: Dict[str, float] = {}
    gaps: List[float] = []
    for name in STUDY_WORKLOADS:
        result, oracle = replay_day(name, seed=seed, service_model=model)
        gap = result.total_energy_j / oracle.dynamic_energy_j - 1.0
        out[f"{name.lower()}_gap"] = gap
        gaps.append(gap)
    out["max_gap"] = max(gaps)
    return out


def _derive_bursty_contrast(seed: int) -> Dict[str, float]:
    from repro.experiments.scheduling import run_mix_contrast

    out: Dict[str, float] = {}
    for c in run_mix_contrast(("EP", "x264"), seed=seed, arrival_model="mmpp"):
        out[f"{c.workload.lower()}_degradation"] = c.degradation
    return out


def _derive_serving_slo(seed: int) -> Dict[str, float]:
    import repro
    from repro.cluster.search import recommend_exhaustive
    from repro.serve.loadgen import selfhosted_loadgen
    from repro.serve.service import DEFAULT_SLO_P95_S, ServeConfig

    space = {"max_wimpy": 5, "max_brawny": 2, "budget_w": None}
    result, _summary = selfhosted_loadgen(
        ServeConfig(slo_p95_s=DEFAULT_SLO_P95_S),
        mode="closed",
        clients=8,
        total_requests=200,
        workloads=("EP", "memcached"),
        space=space,
        seed=seed,
        collect_responses=True,
    )
    spaces_by_workload: Dict[str, list] = {}
    checked = 0
    identical = 0
    for body, doc in result.responses:
        if not doc.get("cache_hit"):
            continue
        name = str(body["workload"])
        spaces = spaces_by_workload.setdefault(
            name,
            [
                repro.TypeSpace(
                    repro.get_node_spec("A9"), n_max=int(space["max_wimpy"])
                ),
                repro.TypeSpace(
                    repro.get_node_spec("K10"), n_max=int(space["max_brawny"])
                ),
            ],
        )
        rec = recommend_exhaustive(
            repro.workload(name), spaces, deadline_s=float(body["deadline_s"])
        )
        if doc.get("feasible") is False:
            ok = rec is None
        else:
            ok = (
                rec is not None
                and doc.get("tp_s") == rec.evaluation.tp_s
                and doc.get("energy_j") == rec.evaluation.energy_j
                and doc.get("peak_power_w") == rec.evaluation.peak_power_w
                and doc.get("mix") == rec.config.label()
                and doc.get("operating_point") == str(rec.config)
            )
        checked += 1
        identical += int(ok)
    return {
        "p95_latency_s": result.p95_s,
        "throughput_rps": result.throughput_rps,
        "completed_fraction": result.completed / result.attempted,
        "checked": float(checked),
        "bit_identical_fraction": identical / checked if checked else math.nan,
    }


#: The monitor registry, evaluation order = declaration order.
MONITORS: Dict[str, ClaimMonitor] = {
    m.name: m
    for m in (
        ClaimMonitor(
            name="md1-mc-agreement",
            claim=(
                "analytic M/D/1 p95 inside the simulated 99% CI on the"
                " reduced EP validation grid"
            ),
            derive=_derive_md1_mc_agreement,
            bands={"agreement_fraction": Band(0.9, 1.0)},
        ),
        ClaimMonitor(
            name="table6-ppr-winners",
            claim=(
                "calibrated model reproduces the paper's Table 6 PPR winner"
                " for every workload"
            ),
            derive=_derive_ppr_winners,
            bands={"match_fraction": Band(1.0, 1.0)},
        ),
        ClaimMonitor(
            name="fig9-mix-contrast",
            claim=(
                "wimpy Pareto mix preserves EP's p95 (~x1.03) but degrades"
                " x264's (~x11) at the same absolute load"
            ),
            derive=_derive_mix_contrast,
            bands={
                "ep_degradation": Band(0.9, 1.3),
                "x264_degradation": Band(4.0, 30.0),
            },
        ),
        ClaimMonitor(
            name="pareto-sublinearity",
            claim=(
                "Pareto mixes cross below the reference ideal line, earlier"
                " the fewer K10s; (25,7) by U=0.75, (25,5) by U=0.5"
            ),
            derive=_derive_pareto_sublinearity,
            bands={
                "crossover_25_5": Band(0.0, 0.5),
                "crossover_25_7": Band(0.0, 0.75),
                "monotone": Band(1.0, 1.0),
            },
        ),
        ClaimMonitor(
            name="scheduler-oracle-gap",
            claim=(
                "online ppr-greedy energy within 5% of the offline oracle"
                " on every study workload"
            ),
            derive=_derive_scheduler_oracle_gap,
            bands={"max_gap": Band(-0.05, 0.05)},
        ),
        ClaimMonitor(
            name="robustness-heavytail-gap",
            claim=(
                "ppr-greedy energy within 10% of the deterministic-model"
                " oracle under Pareto (alpha=2.2) service times"
            ),
            derive=_derive_heavytail_oracle_gap,
            bands={"max_gap": Band(-0.05, 0.10)},
        ),
        ClaimMonitor(
            name="robustness-bursty-contrast",
            claim=(
                "MMPP burstiness amplifies the Fig. 9 contrast: EP"
                " degradation x2-x20, x264 degradation x40-x500"
            ),
            derive=_derive_bursty_contrast,
            bands={
                "ep_degradation": Band(2.0, 20.0),
                "x264_degradation": Band(40.0, 500.0),
            },
        ),
        ClaimMonitor(
            name="serving-slo",
            claim=(
                "always-on service under the seeded closed-loop reference"
                " load: p95 under the SLO, every request completed, every"
                " cache-hit answer bit-identical to the offline sweep"
            ),
            derive=_derive_serving_slo,
            bands={
                "p95_latency_s": Band(0.0, 0.25),
                "completed_fraction": Band(1.0, 1.0),
                "bit_identical_fraction": Band(1.0, 1.0),
            },
        ),
    )
}


def monitor_names() -> Tuple[str, ...]:
    """Registered monitor names, in evaluation order."""
    return tuple(MONITORS)


def run_monitors(
    names: Optional[Sequence[str]] = None,
    *,
    seed: int = DEFAULT_SEED,
    ledger: Optional[Ledger] = None,
    record: bool = True,
) -> List[MonitorResult]:
    """Evaluate monitors (all, or the named subset) and ledger the results.

    Each evaluation appends one ``monitor/<name>`` record whose scalars
    are the derived claim values — so drift detection watches the
    *claims* across commits, not just the benchmarks.  Recording honours
    :func:`repro.obs.ledger.ledger_enabled` and store IO failures never
    fail a check run.
    """
    selected = list(names) if names else list(MONITORS)
    unknown = [n for n in selected if n not in MONITORS]
    if unknown:
        raise ReproError(
            f"unknown monitors {unknown}; expected among {monitor_names()}"
        )
    results = [MONITORS[n].evaluate(seed=seed) for n in selected]
    if record and ledger_enabled():
        target = ledger if ledger is not None else default_ledger()
        for r in results:
            rec = new_record(
                "monitor",
                f"monitor/{r.name}",
                params={"seed": seed},
                scalars=r.scalars,
                seed=seed,
                wall_s=r.wall_s,
                exit_code=0 if r.passed else 1,
            )
            try:
                target.append(rec)
            except OSError:
                pass
    return results


def render_monitor_report(results: Sequence[MonitorResult]) -> str:
    """The check run as a compact pass/fail report."""
    lines: List[str] = []
    width = max((len(r.name) for r in results), default=0)
    for r in results:
        verdict = "ok  " if r.passed else "FAIL"
        parts = [
            f"{c.scalar}={c.value:.4g} {'in' if c.passed else 'NOT in'} {c.band}"
            for c in r.checks
        ]
        lines.append(
            f"{verdict} {r.name:<{width}}  {'; '.join(parts)}"
            f"  [{r.wall_s:.2f}s]"
        )
        if not r.passed:
            lines.append(f"     claim: {r.claim}")
    n_fail = sum(1 for r in results if not r.passed)
    lines.append(
        f"{len(results)} monitors, "
        + ("all green" if n_fail == 0 else f"{n_fail} RED")
    )
    return "\n".join(lines)
