"""The ``repro`` logger hierarchy.

Every diagnostic the library emits goes through one stdlib ``logging``
hierarchy rooted at the ``repro`` logger: modules ask for
``get_logger(__name__)`` (which maps ``repro.hardware.microbench`` →
logger ``repro.hardware.microbench``) and never print.  Nothing is shown
unless the embedding application configures handlers — the library adds a
:class:`logging.NullHandler` to the root so an unconfigured import stays
silent, per stdlib convention.

The CLI's top-level ``--log-level`` flag calls :func:`configure_logging`,
which attaches a single stderr handler to the ``repro`` root (idempotent:
reconfiguring adjusts the level instead of stacking handlers).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO, Tuple

from repro.errors import ReproError

__all__ = ["ROOT_LOGGER", "LOG_LEVELS", "get_logger", "configure_logging"]

#: Name of the hierarchy root every repro logger descends from.
ROOT_LOGGER = "repro"

#: CLI-facing level names, least to most severe.
LOG_LEVELS: Tuple[str, ...] = ("debug", "info", "warning", "error", "critical")

#: Marker attribute identifying the handler configure_logging installed.
_HANDLER_MARK = "_repro_cli_handler"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger inside the ``repro`` hierarchy.

    ``get_logger()`` returns the root; ``get_logger("repro.queueing.des")``
    (the usual ``get_logger(__name__)`` call) and ``get_logger("des")``
    both return children of it.
    """
    if not name or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(
    level: str = "warning", *, stream: Optional[TextIO] = None
) -> logging.Logger:
    """Point the ``repro`` hierarchy at one stderr (or ``stream``) handler.

    Idempotent: a handler previously installed by this function is
    replaced, so repeated CLI invocations in one process never stack
    duplicate handlers.  Returns the configured root logger.
    """
    lvl = level.lower()
    if lvl not in LOG_LEVELS:
        raise ReproError(
            f"unknown log level {level!r}; expected one of {LOG_LEVELS}"
        )
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    root.setLevel(getattr(logging, lvl.upper()))
    return root
