"""Structured tracing: nestable spans, ring buffer, Chrome-trace export.

A *span* wraps one phase of work — an engine run, one control interval,
one replication batch — and records its wall-clock and CPU time plus any
user attributes.  Spans nest: the tracer keeps an active-span stack, so
each record carries its full call path (``scheduler.run;interval`` …) and
the exports can reconstruct the hierarchy without parent pointers.

Usage::

    from repro.obs import span, get_tracer
    get_tracer().enable()
    with span("scheduler.run", policy="ppr-greedy"):
        with span("interval", k=0):
            ...

Records land in a fixed-capacity ring buffer (oldest spans drop first —
the tracer never grows without bound during a long replay) and export two
ways:

* :meth:`Tracer.to_chrome_trace` — the Chrome trace-event JSON format
  (complete ``"ph": "X"`` events), loadable in ``chrome://tracing`` /
  Perfetto;
* :meth:`Tracer.flame` / :meth:`Tracer.render_flame` — per-call-path
  aggregation (calls, total/self wall time, CPU time) rendered as an
  ASCII flame summary via :func:`repro.viz.ascii.render_flame`.

Like the metrics registry, tracing is disabled by default: ``span()``
then returns a shared no-op context manager — no record, no allocation
beyond the call itself.  Exception safety: a span that exits through an
exception is still recorded, with an ``error`` attribute naming the
exception type (and the exception propagates unchanged).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter, process_time
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "SpanRecord",
    "FlameRow",
    "Tracer",
    "get_tracer",
    "span",
]

#: Default ring-buffer capacity: enough for a full scheduling study's
#: per-interval spans with room to spare, small enough to stay cheap.
DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    #: Full call path, outermost first (this span's name is ``path[-1]``).
    path: Tuple[str, ...]
    #: Nesting depth (0 = top level).
    depth: int
    #: Start time relative to the tracer's origin (seconds).
    t0_s: float
    wall_s: float
    cpu_s: float
    attrs: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class FlameRow:
    """Aggregate of every span sharing one call path."""

    path: Tuple[str, ...]
    calls: int
    wall_s: float
    cpu_s: float
    #: Wall time not covered by child paths.
    self_wall_s: float


class _ActiveSpan:
    """Context manager for one open span (internal)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0", "_cpu0", "_path")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack
        parent_path = stack[-1]._path if stack else ()
        self._path = parent_path + (self._name,)
        stack.append(self)
        self._t0 = perf_counter()
        self._cpu0 = process_time()
        return self

    def set(self, **attrs: object) -> None:
        """Attach attributes to the open span."""
        self._attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = perf_counter() - self._t0
        cpu = process_time() - self._cpu0
        tracer = self._tracer
        # Pop self even if inner spans leaked (defensive against misuse).
        stack = tracer._stack
        while stack:
            if stack.pop() is self:
                break
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        tracer._record(
            SpanRecord(
                name=self._name,
                path=self._path,
                depth=len(self._path) - 1,
                t0_s=self._t0 - tracer._origin,
                wall_s=wall,
                cpu_s=cpu,
                attrs=self._attrs,
            )
        )
        return None  # never swallow exceptions


class _NoopSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def set(self, **attrs: object) -> None:
        pass

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopSpan()


class Tracer:
    """A ring buffer of completed spans plus the active-span stack."""

    def __init__(self, *, capacity: int = DEFAULT_CAPACITY, enabled: bool = False):
        if capacity < 1:
            raise ReproError(f"tracer capacity must be positive, got {capacity}")
        self.enabled = bool(enabled)
        self._capacity = capacity
        self._records: List[Optional[SpanRecord]] = []
        self._next = 0  # insertion slot once the ring is full
        self._total = 0
        self._stack: List[_ActiveSpan] = []
        self._origin = perf_counter()

    # -- lifecycle --------------------------------------------------------
    def enable(self) -> None:
        """Start recording spans."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (kept records remain exportable)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every record and restart the clock origin."""
        self._records = []
        self._next = 0
        self._total = 0
        self._stack = []
        self._origin = perf_counter()

    # -- recording --------------------------------------------------------
    def span(self, name: str, **attrs: object) -> object:
        """Open a span named ``name``; returns a context manager.

        While the tracer is disabled this returns a shared no-op object.
        """
        if not self.enabled:
            return _NOOP
        return _ActiveSpan(self, name, attrs)

    def _record(self, record: SpanRecord) -> None:
        if len(self._records) < self._capacity:
            self._records.append(record)
        else:
            self._records[self._next] = record
            self._next = (self._next + 1) % self._capacity
        self._total += 1

    # -- read side --------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Ring-buffer capacity."""
        return self._capacity

    @property
    def dropped(self) -> int:
        """Spans evicted by ring wrap-around."""
        return max(0, self._total - self._capacity)

    def spans(self) -> List[SpanRecord]:
        """Completed spans, oldest first (accounting for ring wrap)."""
        if len(self._records) < self._capacity:
            return list(self._records)
        return self._records[self._next :] + self._records[: self._next]

    # -- exports ----------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, object]:
        """The spans as a Chrome trace-event document.

        Complete events (``"ph": "X"``) with microsecond timestamps; load
        the JSON in ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        events = []
        for r in self.spans():
            args = {k: _jsonable(v) for k, v in r.attrs.items()}
            args["cpu_ms"] = round(r.cpu_s * 1e3, 6)
            events.append(
                {
                    "name": r.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(r.t0_s * 1e6, 3),
                    "dur": round(r.wall_s * 1e6, 3),
                    "pid": 0,
                    "tid": 0,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.tracing", "dropped_spans": self.dropped},
        }

    def write_chrome_trace(self, path) -> None:
        """Write the Chrome-trace JSON to ``path``.

        Missing parent directories are created; an existing file at
        ``path`` is overwritten (each run's trace replaces the last).
        """
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        with open(p, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=2)
            fh.write("\n")

    def flame(self) -> List[FlameRow]:
        """Per-call-path aggregation, sorted by total wall time descending."""
        totals: Dict[Tuple[str, ...], List[float]] = {}
        for r in self.spans():
            agg = totals.setdefault(r.path, [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += r.wall_s
            agg[2] += r.cpu_s
        child_wall: Dict[Tuple[str, ...], float] = {}
        for path, (_, wall, _) in totals.items():
            if len(path) > 1:
                child_wall[path[:-1]] = child_wall.get(path[:-1], 0.0) + wall
        rows = [
            FlameRow(
                path=path,
                calls=int(calls),
                wall_s=wall,
                cpu_s=cpu,
                self_wall_s=max(0.0, wall - child_wall.get(path, 0.0)),
            )
            for path, (calls, wall, cpu) in totals.items()
        ]
        rows.sort(key=lambda row: (-row.wall_s, row.path))
        return rows

    def render_flame(self, *, width: int = 40) -> str:
        """The flame aggregation as an ASCII summary (see ``repro.viz``)."""
        from repro.viz.ascii import render_flame

        return render_flame(self.flame(), width=width)


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


#: The process-wide tracer; disabled by default.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide :class:`Tracer` singleton."""
    return _TRACER


def span(name: str, **attrs: object) -> object:
    """Open a span on the process-wide tracer (no-op while disabled)."""
    tracer = _TRACER
    if not tracer.enabled:
        return _NOOP
    return _ActiveSpan(tracer, name, attrs)
