"""The run ledger: an append-only longitudinal store of ``repro-run/1`` records.

PR 4's telemetry (counters, spans, bench envelopes) is point-in-time:
every CLI invocation and benchmark run is an island, and the numbers the
reproduction is judged on are only re-checked when a test happens to
exercise them.  The ledger is the memory layer underneath: every CLI
subcommand, benchmark driver and claim monitor appends one structured
record — git SHA, seed, configuration digest, key result scalars,
wall/CPU time — to a JSONL store under ``.repro/runs/``, so drift
detection (:mod:`repro.obs.drift`), the claim monitors
(:mod:`repro.obs.monitors`) and the dashboard
(:mod:`repro.obs.dashboard`) can compare *this* run against the whole
recorded history.

Store layout (all under the ledger root, default ``.repro/runs/``):

* ``runs.jsonl`` — the live store, strictly append-only: one JSON
  document per line, oldest first.  Appends never rewrite existing
  bytes (pinned by ``tests/obs/test_ledger.py``).
* ``archive.jsonl`` — where :meth:`Ledger.compact` moves records beyond
  the per-name retention window.  Also append-only; compaction moves
  records, it never destroys them.
* ``index.json`` — a small derived summary (per-name counts, last run
  ids) rewritten on each append so dashboards can enumerate names
  without scanning the JSONL.  It is a cache: the JSONL files are the
  source of truth and the index is rebuilt whenever it is stale.

Reproducibility contract: a record's ``scalars`` are the run's key
*result* numbers (energy gaps, p95s, agreement fractions — never raw
timings unless the run is a benchmark), so two runs with the same git
SHA, seed and ``config_digest`` must report identical scalars.  Wall and
CPU time live outside ``scalars`` because they are honest measurements,
not results.

Environment knobs: ``REPRO_LEDGER_DIR`` relocates the default store
(the test suite points it at a tmp dir); ``REPRO_LEDGER=0`` disables
recording entirely (:func:`ledger_enabled`).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from itertools import count
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "RUN_SCHEMA",
    "DEFAULT_LEDGER_DIR",
    "DEFAULT_RETENTION",
    "RunRecord",
    "Ledger",
    "config_digest",
    "current_git_sha",
    "default_ledger",
    "ledger_enabled",
    "new_record",
    "record_bench_result",
]

#: Version tag of the run-record envelope.
RUN_SCHEMA = "repro-run/1"

#: Where the ledger lives relative to the working directory (override with
#: the ``REPRO_LEDGER_DIR`` environment variable).
DEFAULT_LEDGER_DIR = Path(".repro") / "runs"

#: Records kept per run name by :meth:`Ledger.compact`; older records move
#: to the archive.  Generous: one record is a few hundred bytes.
DEFAULT_RETENTION = 200

#: Process-wide monotonic counter folded into run ids so records appended
#: within one timestamp tick stay distinct.
_RUN_COUNTER = count()


@dataclass(frozen=True)
class RunRecord:
    """One ``repro-run/1`` ledger entry."""

    run_id: str
    #: ``cli`` (a CLI subcommand), ``benchmark`` (a BENCH driver),
    #: ``monitor`` (a claim-monitor evaluation) or ``experiment``.
    kind: str
    #: Namespaced run name, e.g. ``cli/schedule`` or ``bench/sweep``.
    name: str
    timestamp_utc: str
    git_sha: str
    #: Root seed of the run, when the run is seeded.
    seed: Optional[int]
    #: The run's configuration (argv values, benchmark params).
    params: Dict[str, object]
    #: Digest of ``params`` — two runs with equal digests ran the same
    #: configuration.
    config_digest: str
    #: Key result scalars; deterministic given (git_sha, seed, digest).
    scalars: Dict[str, float]
    wall_s: float
    cpu_s: float
    exit_code: int = 0
    schema: str = RUN_SCHEMA
    extra: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """The record as one compact JSON line (no embedded newlines)."""
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        """Parse one JSONL line back into a record."""
        doc = json.loads(line)
        if doc.get("schema") != RUN_SCHEMA:
            raise ReproError(
                f"unsupported run-record schema {doc.get('schema')!r}"
            )
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in doc.items() if k in known})


def config_digest(params: Mapping[str, object]) -> str:
    """A stable SHA-256 digest of one canonicalised parameter mapping.

    Canonical JSON (sorted keys, no whitespace) makes the digest
    insensitive to dict ordering; non-JSON values must be stringified by
    the caller first.
    """
    blob = json.dumps(dict(params), sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


_GIT_SHA_CACHE: Dict[str, str] = {}


def current_git_sha(repo_root: Optional[Path] = None) -> str:
    """The current ``HEAD`` commit, or ``"unknown"`` outside a git repo.

    Cached per directory for the life of the process — the SHA cannot
    change under a running command, and ledger appends must stay cheap.
    """
    key = str(repo_root) if repo_root is not None else "."
    cached = _GIT_SHA_CACHE.get(key)
    if cached is not None:
        return cached
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            cwd=repo_root,
            timeout=5,
        )
        sha = proc.stdout.decode("utf-8", "replace").strip() if proc.returncode == 0 else "unknown"
    except (OSError, subprocess.TimeoutExpired):
        sha = "unknown"
    _GIT_SHA_CACHE[key] = sha
    return sha


def new_record(
    kind: str,
    name: str,
    *,
    params: Optional[Mapping[str, object]] = None,
    scalars: Optional[Mapping[str, float]] = None,
    seed: Optional[int] = None,
    wall_s: float = 0.0,
    cpu_s: float = 0.0,
    exit_code: int = 0,
    git_sha: Optional[str] = None,
    extra: Optional[Mapping[str, object]] = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord` with the ambient metadata filled in."""
    if kind not in ("cli", "benchmark", "monitor", "experiment"):
        raise ReproError(f"unknown run kind {kind!r}")
    if not name:
        raise ReproError("run name must be non-empty")
    p = {k: params[k] for k in sorted(params)} if params else {}
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S.%fZ")
    digest = config_digest(p)
    raw = f"{name}|{digest}|{seed}|{stamp}|{os.getpid()}|{next(_RUN_COUNTER)}"
    run_id = hashlib.blake2s(raw.encode("utf-8"), digest_size=6).hexdigest()
    return RunRecord(
        run_id=run_id,
        kind=kind,
        name=name,
        timestamp_utc=stamp,
        git_sha=git_sha if git_sha is not None else current_git_sha(),
        seed=int(seed) if seed is not None else None,
        params=p,
        config_digest=digest,
        scalars={k: float(v) for k, v in (scalars or {}).items()},
        wall_s=float(wall_s),
        cpu_s=float(cpu_s),
        exit_code=int(exit_code),
        extra=dict(extra or {}),
    )


class Ledger:
    """The append-only run store rooted at one directory."""

    INDEX_SCHEMA = "repro-run-index/1"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.path = self.root / "runs.jsonl"
        self.archive_path = self.root / "archive.jsonl"
        self.index_path = self.root / "index.json"

    # -- write side -------------------------------------------------------
    def append(self, record: RunRecord) -> RunRecord:
        """Append one record to the live store and refresh the index.

        Strictly append-only: the existing content of ``runs.jsonl`` is
        never rewritten or reordered by an append.  If the store ends in
        a torn line (a crash mid-write left no trailing newline), the
        append starts a fresh line first so the torn fragment poisons at
        most itself.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload = (record.to_json() + "\n").encode("utf-8")
        # One O_APPEND write per record: POSIX guarantees the kernel
        # performs the seek-to-end and the write atomically, so records
        # appended concurrently from several processes never interleave
        # (pinned by the multiprocess hammer in tests/obs/test_ledger.py).
        # The buffered text-mode append this replaces could flush a record
        # in several write(2) calls, letting another process's record land
        # mid-line.
        fd = os.open(self.path, os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            try:
                size = os.fstat(fd).st_size
                if size > 0 and os.pread(fd, 1, size - 1) != b"\n":
                    # A crash mid-write left a torn line: start a fresh one
                    # so the fragment poisons at most itself.
                    payload = b"\n" + payload
            except OSError:
                pass
            os.write(fd, payload)
        finally:
            os.close(fd)
        self._write_index()
        return record

    def compact(self, *, keep: int = DEFAULT_RETENTION) -> int:
        """Retention: move records beyond the newest ``keep`` per name to
        the archive.

        Returns the number of records archived.  The live store is
        rewritten atomically (tmp file + rename); archived records are
        *appended* to ``archive.jsonl``, so no record is ever lost —
        compaction trades live-store size for archive size.
        """
        if keep < 1:
            raise ReproError(f"retention must keep >= 1 record, got {keep}")
        records = self.records()
        per_name: Dict[str, int] = {}
        for rec in reversed(records):  # newest first
            per_name[rec.name] = per_name.get(rec.name, 0) + 1
        surplus = {n: c - keep for n, c in per_name.items() if c > keep}
        if not surplus:
            return 0
        archived: List[RunRecord] = []
        kept: List[RunRecord] = []
        for rec in records:  # oldest first: archive the leading surplus
            if surplus.get(rec.name, 0) > 0:
                surplus[rec.name] -= 1
                archived.append(rec)
            else:
                kept.append(rec)
        with open(self.archive_path, "a", encoding="utf-8") as fh:
            for rec in archived:
                fh.write(rec.to_json())
                fh.write("\n")
        tmp = self.path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for rec in kept:
                fh.write(rec.to_json())
                fh.write("\n")
        tmp.replace(self.path)
        self._write_index()
        return len(archived)

    # -- read side --------------------------------------------------------
    def _read_file(self, path: Path) -> List[RunRecord]:
        if not path.exists():
            return []
        out: List[RunRecord] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(RunRecord.from_json(line))
                except (json.JSONDecodeError, TypeError, ReproError):
                    # A torn or foreign line must not poison the history.
                    continue
        return out

    def records(
        self,
        *,
        name: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
        include_archive: bool = False,
    ) -> List[RunRecord]:
        """Records oldest-first, optionally filtered; ``limit`` keeps the
        newest ``limit`` entries after filtering."""
        records: List[RunRecord] = []
        if include_archive:
            records.extend(self._read_file(self.archive_path))
        records.extend(self._read_file(self.path))
        if name is not None:
            records = [r for r in records if r.name == name]
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if limit is not None and limit >= 0:
            records = records[len(records) - limit :] if limit else []
        return records

    def latest(self, name: str) -> Optional[RunRecord]:
        """The newest record of one run name, or None."""
        matching = self.records(name=name)
        return matching[-1] if matching else None

    def names(self) -> List[str]:
        """Every distinct run name in the live store, sorted."""
        return sorted({r.name for r in self.records()})

    def history(self, name: str, scalar: str) -> List[Tuple[str, float]]:
        """``(run_id, value)`` pairs of one scalar across a name's records,
        oldest first; records lacking the scalar are skipped."""
        return [
            (r.run_id, float(r.scalars[scalar]))
            for r in self.records(name=name)
            if scalar in r.scalars
        ]

    def __len__(self) -> int:
        return len(self.records())

    # -- index ------------------------------------------------------------
    def _write_index(self) -> None:
        records = self.records()
        names: Dict[str, Dict[str, object]] = {}
        for rec in records:
            entry = names.setdefault(
                rec.name, {"count": 0, "kind": rec.kind}
            )
            entry["count"] = int(entry["count"]) + 1
            entry["last_run_id"] = rec.run_id
            entry["last_timestamp_utc"] = rec.timestamp_utc
            entry["last_git_sha"] = rec.git_sha
        doc = {
            "schema": self.INDEX_SCHEMA,
            "total": len(records),
            "names": names,
        }
        # The index is a derived cache, but concurrent appenders rewriting
        # it in place could expose a half-written document to a reader.
        # Write-to-temp + rename keeps every observable index complete
        # (per-pid temp name so two writers never share a temp file).
        tmp = self.index_path.with_name(f".index.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.index_path)

    def index(self) -> Dict[str, object]:
        """The index document (rebuilt from the store when missing)."""
        if not self.index_path.exists():
            if not self.path.exists():
                return {"schema": self.INDEX_SCHEMA, "total": 0, "names": {}}
            self._write_index()
        with open(self.index_path, "r", encoding="utf-8") as fh:
            return json.load(fh)


def default_ledger(root: Optional[Path] = None) -> Ledger:
    """The ledger at ``root``, ``$REPRO_LEDGER_DIR``, or ``.repro/runs``."""
    if root is not None:
        return Ledger(root)
    env = os.environ.get("REPRO_LEDGER_DIR")
    return Ledger(Path(env) if env else DEFAULT_LEDGER_DIR)


def ledger_enabled() -> bool:
    """Whether run recording is globally enabled (``REPRO_LEDGER=0`` to
    switch it off)."""
    return os.environ.get("REPRO_LEDGER", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def record_bench_result(
    result: Mapping[str, object],
    *,
    ledger: Optional[Ledger] = None,
    wall_s: float = 0.0,
    cpu_s: float = 0.0,
) -> Optional[RunRecord]:
    """Append one ``repro-bench/1`` envelope to the ledger as ``bench/<name>``.

    The record's scalars are the envelope's floor-bearing metrics plus its
    timings (see :func:`repro.obs.drift.bench_scalars`); respects
    :func:`ledger_enabled` and never raises on store IO problems — a broken
    ledger must not fail a benchmark run.  When no ``wall_s`` is passed,
    the envelope's own top-level timings stand in for it.
    """
    from repro.obs.drift import bench_scalars

    if not ledger_enabled():
        return None
    benchmark = str(result.get("benchmark", "")) or "unknown"
    params = {
        k: v
        for k, v in dict(result.get("params", {})).items()
        if isinstance(v, (str, int, float, bool)) or v is None
    }
    seed = params.get("seed")
    if not wall_s:
        timings = result.get("timings_s")
        if isinstance(timings, Mapping):
            wall_s = sum(
                v for v in timings.values() if isinstance(v, (int, float))
            )
    record = new_record(
        "benchmark",
        f"bench/{benchmark}",
        params=params,
        scalars=bench_scalars(benchmark, result),
        seed=int(seed) if isinstance(seed, int) else None,
        wall_s=wall_s,
        cpu_s=cpu_s,
    )
    target = ledger if ledger is not None else default_ledger()
    try:
        return target.append(record)
    except OSError:
        return None
