"""Request-level observability for the serving stack.

The process-wide :mod:`repro.obs.tracing` tracer keeps ONE span stack,
which is exactly right for the offline pipelines it instruments and
exactly wrong for the serving path, where dozens of requests interleave
on one event loop and each needs its *own* nested span tree.  This
module supplies the per-request layer :mod:`repro.serve` wires through
admission, cache, batching and compute:

:class:`RequestContext`
    One request's trace: an id (client-supplied header or generated),
    the admission decision, the cache outcome, and a nested stage tree
    (``parse``/``admission``/``cache``/``batch.queue``/``batch.compute``
    /``lookup``/``render``).  Stages opened with :meth:`~RequestContext.stage`
    nest via a per-context stack; work attributed from *another* task
    (the batcher's drain loop, the compute callback) lands with explicit
    timings via :meth:`~RequestContext.add_stage`, parented under
    whatever stage the request coroutine currently holds open.

:class:`TailSampler`
    Tail-based keep/drop decided at request *completion*: errors, sheds
    and expiries are always kept, so is anything at or above a streaming
    p99 latency estimate, and a deterministic 1-in-``1/rate`` count of
    the routine rest — so the flight ring stays representative across
    10^5+ request runs without unbounded memory.

:class:`BurnRateMonitor`
    Multi-window (fast/slow) error-budget burn against the configured
    p95 SLO, computed online from the per-request latency/shed stream.
    ``burn = bad_fraction / budget_fraction`` (budget 5% for a p95 SLO);
    an alert fires on the rising edge when *both* windows exceed the
    threshold — the Google-SRE multi-window rule: the fast window catches
    the onset, the slow window keeps one blip from paging.

:class:`FlightRecorder`
    A bounded ring of the last N kept traces that dumps a JSON +
    Chrome-trace post-mortem to disk (and appends a ledger record) on a
    burn alert, a 5xx, or shutdown-with-alert.

All of it follows the layer's prime rule: near-zero cost while
disabled, zero effect on answers while enabled — contexts never touch
RNG streams or floating-point work, so cache-hit responses stay
bit-identical to the offline sweep with tracing at full sampling
(``tests/serve/test_request_obs.py``).
"""

from __future__ import annotations

import itertools
import json
import math
from collections import deque
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "AlertEvent",
    "BurnRateMonitor",
    "DEFAULT_FLIGHT_CAPACITY",
    "DEFAULT_SAMPLE_RATE",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "REQUEST_ID_HEADER",
    "RequestContext",
    "RequestRecorder",
    "StageRecord",
    "TailSampler",
    "classify_outcome",
    "flight_chrome_trace",
    "flight_document",
    "list_flight_dumps",
    "load_flight_dump",
    "span_coverage",
]

#: The request-id header the service reads and echoes (lower-cased, the
#: way the server's header parser normalises keys).
REQUEST_ID_HEADER = "x-repro-request-id"

#: Version tag of the flight-recorder dump document.
FLIGHT_SCHEMA = "repro-flight/1"

#: Default routine-traffic sampling rate (errors/sheds/p99 tail are
#: always kept regardless).
DEFAULT_SAMPLE_RATE = 0.05

#: Default flight-ring capacity (fully-traced requests held for dumps).
DEFAULT_FLIGHT_CAPACITY = 64

#: Default dump directory when neither config nor REPRO_FLIGHT_DIR says
#: otherwise.
DEFAULT_FLIGHT_DIR = Path(".repro") / "flight"

#: Multi-window burn-rate defaults, sized for short benchmark/CI runs
#: rather than week-long SLO periods: the fast window catches an onset
#: within seconds, the slow window confirms it is not one blip.
DEFAULT_FAST_WINDOW_S = 5.0
DEFAULT_SLOW_WINDOW_S = 30.0
DEFAULT_BURN_THRESHOLD = 2.0

#: Error budget for a p95 SLO: 5% of requests may be bad by definition.
DEFAULT_BUDGET_FRACTION = 0.05

#: The request-outcome vocabulary (histogram label values).
OUTCOMES = ("ok", "shed", "expired", "error")


def classify_outcome(status: int) -> str:
    """Map an HTTP status to the serving-outcome vocabulary.

    503 is admission doing its job (``shed``), 504 a deadline expiry
    (``expired``); anything else non-2xx/3xx is an ``error``.
    """
    if status < 400:
        return "ok"
    if status == 503:
        return "shed"
    if status == 504:
        return "expired"
    return "error"


@dataclass(frozen=True)
class StageRecord:
    """One closed stage of one request: where time went."""

    name: str
    #: Ancestry including the stage itself, e.g. ``("cache", "batch.queue")``.
    path: Tuple[str, ...]
    #: Start relative to the recorder's origin (one timeline for all
    #: requests, so a dump renders as a single Chrome-trace session).
    t0_s: float
    wall_s: float
    attrs: Mapping[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "path": list(self.path),
            "t0_s": self.t0_s,
            "wall_s": self.wall_s,
            "attrs": dict(self.attrs),
        }


class _NoopStage:
    """Shared do-nothing stage for untraced (or finished) contexts."""

    __slots__ = ()

    def __enter__(self) -> "_NoopStage":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> None:
        pass


_NOOP_STAGE = _NoopStage()


class _Stage:
    """One open stage: a context manager bound to its request's stack."""

    __slots__ = ("_ctx", "name", "attrs", "_t0")

    def __init__(self, ctx: "RequestContext", name: str, attrs: Dict[str, object]):
        self._ctx = ctx
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_Stage":
        self._ctx._stack.append(self.name)
        self._t0 = perf_counter()
        return self

    def set(self, **attrs: object) -> None:
        """Attach attributes to the stage (visible in dumps)."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = perf_counter() - self._t0
        ctx = self._ctx
        path = tuple(ctx._stack)
        ctx._stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        ctx.stages.append(
            StageRecord(
                name=self.name,
                path=path,
                t0_s=self._t0 - ctx.origin_s,
                wall_s=wall,
                attrs=dict(self.attrs),
            )
        )
        return False


class RequestContext:
    """One request's propagated trace context.

    Created by :meth:`RequestRecorder.start_request` for *every* request
    (so the id echo always works); ``traced=False`` turns every stage
    into a shared no-op so the disabled path costs one attribute check.
    """

    __slots__ = (
        "request_id",
        "endpoint",
        "origin_s",
        "traced",
        "t0_s",
        "wall_s",
        "status",
        "outcome",
        "admitted",
        "cache_hit",
        "digest",
        "keep_reason",
        "stages",
        "_stack",
        "_t0_pc",
        "_finished",
    )

    def __init__(
        self,
        request_id: str,
        endpoint: str,
        *,
        origin_s: float,
        traced: bool = True,
    ) -> None:
        self.request_id = request_id
        self.endpoint = endpoint
        self.origin_s = origin_s
        self.traced = traced
        self._t0_pc = perf_counter()
        self.t0_s = self._t0_pc - origin_s
        self.wall_s = 0.0
        self.status = 0
        self.outcome = ""
        self.admitted: Optional[bool] = None
        self.cache_hit: Optional[bool] = None
        self.digest: Optional[str] = None
        self.keep_reason: Optional[str] = None
        self.stages: List[StageRecord] = []
        self._stack: List[str] = []
        self._finished = False

    def stage(self, name: str, **attrs: object):
        """Open one nested stage (``with ctx.stage("cache") as st: ...``)."""
        if not self.traced or self._finished:
            return _NOOP_STAGE
        return _Stage(self, name, dict(attrs))

    def add_stage(
        self, name: str, *, start_s: float, wall_s: float, **attrs: object
    ) -> None:
        """Record one stage with explicit timings, from any task/thread.

        ``start_s`` is an absolute ``perf_counter`` reading.  The stage is
        parented under whatever the request coroutine holds open *now* —
        which is exactly right for the two cross-task callers (the
        batcher's drain loop and the compute return path both run while
        the request awaits inside its ``cache`` stage).  Ignored once the
        request has finished, so a late client-side timeout cannot mutate
        a trace already in the flight ring.
        """
        if not self.traced or self._finished:
            return
        path = tuple(self._stack) + (name,)
        self.stages.append(
            StageRecord(
                name=name,
                path=path,
                t0_s=start_s - self.origin_s,
                wall_s=wall_s,
                attrs=dict(attrs),
            )
        )

    def finish(self, status: int, wall_s: float) -> None:
        """Seal the context with its final status and end-to-end wall."""
        self.status = int(status)
        self.outcome = classify_outcome(status)
        self.wall_s = float(wall_s)
        self._finished = True

    def to_dict(self) -> Dict[str, object]:
        """JSON-able trace of this request (the dump record)."""
        return {
            "request_id": self.request_id,
            "endpoint": self.endpoint,
            "t0_s": self.t0_s,
            "wall_s": self.wall_s,
            "status": self.status,
            "outcome": self.outcome,
            "admitted": self.admitted,
            "cache_hit": self.cache_hit,
            "digest": self.digest,
            "keep_reason": self.keep_reason,
            "stages": [s.to_dict() for s in self.stages],
        }


def span_coverage(request_doc: Mapping[str, object]) -> float:
    """Fraction of a request's wall time its top-level stages account for.

    The acceptance metric for trace completeness: direct children of the
    request root (path length 1) should sum to ~the end-to-end wall; a
    low value means un-attributed time is hiding between stages.
    """
    wall = float(request_doc.get("wall_s") or 0.0)
    if wall <= 0:
        return 0.0
    covered = sum(
        float(s["wall_s"])
        for s in request_doc.get("stages", ())
        if len(s["path"]) == 1
    )
    return covered / wall


class TailSampler:
    """Keep/drop decided at completion: errors, sheds, the p99 tail, and
    a deterministic sample of the routine rest.

    The slow-keep threshold is a streaming p99 estimate over a bounded
    window of recent latencies, refreshed every ``refresh_every``
    observations — cheap enough for the hot path, accurate enough to
    keep the genuinely slowest slice.
    """

    def __init__(
        self,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        *,
        window: int = 512,
        quantile: float = 0.99,
        refresh_every: int = 64,
        min_window: int = 16,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = float(sample_rate)
        self._period = int(round(1.0 / sample_rate)) if sample_rate > 0 else 0
        self.quantile = float(quantile)
        self._window: Deque[float] = deque(maxlen=int(window))
        self._min_window = int(min_window)
        self._refresh_every = int(refresh_every)
        self._since_refresh = 0
        self._threshold = math.inf
        self._routine = 0
        self.decided = 0
        self.kept_by_reason: Dict[str, int] = {}
        self.dropped = 0

    @property
    def slow_threshold_s(self) -> float:
        """The current keep-if-slower-than threshold (inf until primed)."""
        return self._threshold

    def _observe(self, wall_s: float) -> None:
        self._window.append(wall_s)
        self._since_refresh += 1
        if (
            len(self._window) >= self._min_window
            and self._since_refresh >= self._refresh_every
        ):
            ordered = sorted(self._window)
            idx = min(
                len(ordered) - 1, int(math.ceil(self.quantile * len(ordered))) - 1
            )
            self._threshold = ordered[max(idx, 0)]
            self._since_refresh = 0

    def decide(self, ctx: RequestContext) -> Tuple[bool, Optional[str]]:
        """``(keep, reason)`` for one finished request."""
        self.decided += 1
        threshold = self._threshold
        self._observe(ctx.wall_s)
        if ctx.outcome != "ok":
            reason: Optional[str] = ctx.outcome
        elif ctx.wall_s >= threshold:
            reason = "slow"
        else:
            self._routine += 1
            if self._period and self._routine % self._period == 0:
                reason = "sampled"
            else:
                self.dropped += 1
                return False, None
        self.kept_by_reason[reason] = self.kept_by_reason.get(reason, 0) + 1
        return True, reason

    def stats(self) -> Dict[str, object]:
        return {
            "sample_rate": self.sample_rate,
            "decided": self.decided,
            "dropped": self.dropped,
            "kept_by_reason": dict(self.kept_by_reason),
            "slow_threshold_s": (
                self._threshold if math.isfinite(self._threshold) else None
            ),
        }


@dataclass(frozen=True)
class AlertEvent:
    """One structured SLO burn-rate alert (the rising edge)."""

    kind: str
    #: Fire time relative to the recorder origin (seconds).
    t_s: float
    fast_burn: float
    slow_burn: float
    fast_window_s: float
    slow_window_s: float
    threshold: float
    slo_p95_s: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "t_s": self.t_s,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "threshold": self.threshold,
            "slo_p95_s": self.slo_p95_s,
        }


class BurnRateMonitor:
    """Online multi-window error-budget burn against the p95 SLO.

    A request is *bad* when it was shed, errored, or completed slower
    than the SLO.  With a 5% budget, burn 1.0 means bad requests arrive
    exactly at the rate the SLO tolerates; burn 20 means *every* request
    is bad.  The alert fires on the rising edge when both windows exceed
    the threshold and the fast window holds at least ``min_requests``
    observations (so one slow boot request cannot page), and re-arms
    once the fast window drops back below threshold.
    """

    def __init__(
        self,
        slo_p95_s: float,
        *,
        budget_fraction: float = DEFAULT_BUDGET_FRACTION,
        fast_window_s: float = DEFAULT_FAST_WINDOW_S,
        slow_window_s: float = DEFAULT_SLOW_WINDOW_S,
        threshold: float = DEFAULT_BURN_THRESHOLD,
        min_requests: int = 20,
    ) -> None:
        if budget_fraction <= 0 or budget_fraction >= 1:
            raise ValueError(
                f"budget fraction must be in (0, 1), got {budget_fraction}"
            )
        if fast_window_s <= 0 or slow_window_s < fast_window_s:
            raise ValueError(
                "windows must satisfy 0 < fast <= slow, got "
                f"{fast_window_s}/{slow_window_s}"
            )
        self.slo_p95_s = float(slo_p95_s)
        self.budget_fraction = float(budget_fraction)
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.threshold = float(threshold)
        self.min_requests = int(min_requests)
        #: (t_s, good) pairs within the slow window, oldest first.
        self._events: Deque[Tuple[float, bool]] = deque()
        #: (t_s, good) pairs within the fast window, oldest first.
        self._fast_events: Deque[Tuple[float, bool]] = deque()
        #: Running bad counts for each window, kept in lockstep with the
        #: deques so ``observe`` is O(1) amortized instead of rescanning
        #: tens of thousands of events per request at serving rates.
        self._slow_bad = 0
        self._fast_bad = 0
        self._fast_burn = 0.0
        self._slow_burn = 0.0
        self.good = 0
        self.bad = 0
        self.alert_active = False
        self.alerts: List[AlertEvent] = []
        self._last_t_s = 0.0

    def _window_burn(self, window_s: float, now_s: float) -> Tuple[float, int]:
        """``(burn, count)`` over events newer than ``now - window``."""
        cutoff = now_s - window_s
        total = 0
        bad = 0
        for t, good in reversed(self._events):
            if t < cutoff:
                break
            total += 1
            if not good:
                bad += 1
        if total == 0:
            return 0.0, 0
        return (bad / total) / self.budget_fraction, total

    def burn_rate(self, window_s: float, now_s: Optional[float] = None) -> float:
        """The current burn over one window (for export/inspection)."""
        if now_s is None or now_s == self._last_t_s:
            # The hot path (per-request gauge export) asks for the two
            # standard windows as of the last observation — answer from
            # the incremental counters without touching the deques.
            if window_s == self.fast_window_s:
                return self._fast_burn
            if window_s == self.slow_window_s:
                return self._slow_burn
        now = self._last_t_s if now_s is None else now_s
        return self._window_burn(window_s, now)[0]

    def observe(self, t_s: float, good: bool) -> Optional[AlertEvent]:
        """Feed one finished request; returns an alert on the rising edge."""
        self._last_t_s = t_s
        event = (t_s, good)
        self._events.append(event)
        self._fast_events.append(event)
        if good:
            self.good += 1
        else:
            self.bad += 1
            self._slow_bad += 1
            self._fast_bad += 1
        cutoff = t_s - self.slow_window_s
        while self._events and self._events[0][0] < cutoff:
            if not self._events.popleft()[1]:
                self._slow_bad -= 1
        cutoff = t_s - self.fast_window_s
        while self._fast_events and self._fast_events[0][0] < cutoff:
            if not self._fast_events.popleft()[1]:
                self._fast_bad -= 1
        fast_count = len(self._fast_events)
        slow_count = len(self._events)
        fast = (
            (self._fast_bad / fast_count) / self.budget_fraction
            if fast_count
            else 0.0
        )
        slow = (
            (self._slow_bad / slow_count) / self.budget_fraction
            if slow_count
            else 0.0
        )
        self._fast_burn = fast
        self._slow_burn = slow
        firing = (
            fast_count >= self.min_requests
            and fast >= self.threshold
            and slow >= self.threshold
        )
        if firing and not self.alert_active:
            self.alert_active = True
            event = AlertEvent(
                kind="slo-burn-rate",
                t_s=t_s,
                fast_burn=fast,
                slow_burn=slow,
                fast_window_s=self.fast_window_s,
                slow_window_s=self.slow_window_s,
                threshold=self.threshold,
                slo_p95_s=self.slo_p95_s,
            )
            self.alerts.append(event)
            return event
        if self.alert_active and fast < self.threshold:
            self.alert_active = False
        return None

    def stats(self, now_s: Optional[float] = None) -> Dict[str, object]:
        """The ``/stats`` burn section."""
        now = self._last_t_s if now_s is None else now_s
        return {
            "slo_p95_s": self.slo_p95_s,
            "budget_fraction": self.budget_fraction,
            "threshold": self.threshold,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fast_burn": self._window_burn(self.fast_window_s, now)[0],
            "slow_burn": self._window_burn(self.slow_window_s, now)[0],
            "alert_active": self.alert_active,
            "alerts": len(self.alerts),
            "good": self.good,
            "bad": self.bad,
        }


def flight_document(
    contexts: Sequence[RequestContext],
    *,
    reason: str,
    state: Optional[Mapping[str, object]] = None,
    alert: Optional[AlertEvent] = None,
) -> Dict[str, object]:
    """Assemble one ``repro-flight/1`` post-mortem document."""
    requests = [ctx.to_dict() for ctx in contexts]
    slowest: Optional[Dict[str, object]] = None
    if requests:
        doc = max(requests, key=lambda r: float(r["wall_s"]))
        slowest = {
            "request_id": doc["request_id"],
            "endpoint": doc["endpoint"],
            "status": doc["status"],
            "wall_s": doc["wall_s"],
            "coverage": span_coverage(doc),
        }
    return {
        "schema": FLIGHT_SCHEMA,
        "reason": reason,
        "created_utc": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%S.%fZ"
        ),
        "alert": alert.to_dict() if alert is not None else None,
        "service": dict(state) if state is not None else None,
        "slowest": slowest,
        "requests": requests,
    }


def flight_chrome_trace(doc: Mapping[str, object]) -> Dict[str, object]:
    """Render one flight document as Chrome-trace JSON (chrome://tracing).

    One tid per request so the per-request span trees stack instead of
    interleaving; timestamps are the shared recorder timeline in µs.
    """
    events: List[Dict[str, object]] = []
    for tid, req in enumerate(doc.get("requests", ())):
        events.append(
            {
                "name": f"{req['endpoint']} [{req['outcome']}]",
                "cat": "request",
                "ph": "X",
                "ts": float(req["t0_s"]) * 1e6,
                "dur": float(req["wall_s"]) * 1e6,
                "pid": 0,
                "tid": tid,
                "args": {
                    "request_id": req["request_id"],
                    "status": req["status"],
                    "digest": req.get("digest"),
                    "keep_reason": req.get("keep_reason"),
                },
            }
        )
        for stage in req.get("stages", ()):
            events.append(
                {
                    "name": stage["name"],
                    "cat": "stage",
                    "ph": "X",
                    "ts": float(stage["t0_s"]) * 1e6,
                    "dur": float(stage["wall_s"]) * 1e6,
                    "pid": 0,
                    "tid": tid,
                    "args": dict(stage.get("attrs", {})),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _flight_dir(directory: Optional[Path]) -> Path:
    import os

    if directory is not None:
        return Path(directory)
    env = os.environ.get("REPRO_FLIGHT_DIR")
    if env:
        return Path(env)
    return DEFAULT_FLIGHT_DIR


def list_flight_dumps(directory: Optional[Path] = None) -> List[Path]:
    """Flight-dump JSON paths under ``directory``, oldest first."""
    root = _flight_dir(directory)
    if not root.is_dir():
        return []
    return sorted(
        p
        for p in root.glob("flight-*.json")
        if not p.name.endswith(".trace.json")
    )


def load_flight_dump(path: Path) -> Dict[str, object]:
    """Parse and schema-check one flight dump."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(
            f"{path} is not a {FLIGHT_SCHEMA} document "
            f"(schema={doc.get('schema')!r})"
        )
    return doc


class FlightRecorder:
    """The bounded ring of kept traces, plus the dump machinery."""

    def __init__(
        self,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        *,
        directory: Optional[Path] = None,
        min_dump_interval_s: float = 5.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.directory = Path(directory) if directory is not None else None
        self.min_dump_interval_s = float(min_dump_interval_s)
        self._ring: Deque[RequestContext] = deque(maxlen=self.capacity)
        self._last_dump_pc: Dict[str, float] = {}
        self._seq = itertools.count(1)
        self.dumps: List[str] = []

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, ctx: RequestContext) -> None:
        """Keep one finished trace (evicting the oldest when full)."""
        self._ring.append(ctx)

    def traces(self) -> List[RequestContext]:
        """The kept traces, oldest first."""
        return list(self._ring)

    def slowest(self) -> Optional[RequestContext]:
        """The slowest kept trace (the acceptance-metric subject)."""
        if not self._ring:
            return None
        return max(self._ring, key=lambda ctx: ctx.wall_s)

    def maybe_dump(
        self,
        reason: str,
        *,
        state: Optional[Mapping[str, object]] = None,
        alert: Optional[AlertEvent] = None,
    ) -> Optional[Path]:
        """Dump unless the same reason fired within the rate-limit window."""
        now = perf_counter()
        last = self._last_dump_pc.get(reason)
        if last is not None and now - last < self.min_dump_interval_s:
            return None
        if not self._ring:
            return None
        return self.dump(reason, state=state, alert=alert)

    def dump(
        self,
        reason: str,
        *,
        state: Optional[Mapping[str, object]] = None,
        alert: Optional[AlertEvent] = None,
    ) -> Path:
        """Write the JSON + Chrome-trace post-mortem; append a ledger record.

        A dump failure (full disk, read-only dir) must never take the
        serving loop down, so OS errors are swallowed after recording
        nothing; the returned path exists only on success.
        """
        from repro.obs.ledger import default_ledger, ledger_enabled, new_record

        self._last_dump_pc[reason] = perf_counter()
        doc = flight_document(self.traces(), reason=reason, state=state, alert=alert)
        root = _flight_dir(self.directory)
        stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%S")
        name = f"flight-{stamp}-{reason}-{next(self._seq):03d}"
        json_path = root / f"{name}.json"
        trace_path = root / f"{name}.trace.json"
        root.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(doc, indent=1), encoding="utf-8")
        trace_path.write_text(
            json.dumps(flight_chrome_trace(doc)), encoding="utf-8"
        )
        self.dumps.append(str(json_path))
        if ledger_enabled():
            slowest = doc.get("slowest") or {}
            default_ledger().append(
                new_record(
                    "experiment",
                    "serve/flight-dump",
                    params={"reason": reason},
                    scalars={
                        "requests": float(len(doc["requests"])),
                        "slowest_wall_s": float(slowest.get("wall_s") or 0.0),
                        "slowest_coverage": float(slowest.get("coverage") or 0.0),
                    },
                    extra={"path": str(json_path), "trace_path": str(trace_path)},
                )
            )
        return json_path

    def stats(self) -> Dict[str, object]:
        return {
            "entries": len(self._ring),
            "capacity": self.capacity,
            "dumps": len(self.dumps),
            "dump_paths": list(self.dumps),
        }


class RequestRecorder:
    """The per-service facade tying context creation, sampling, burn-rate
    alerting and the flight recorder together.

    One instance per :class:`repro.serve.service.ReproService`; all
    methods are event-loop-confined except :meth:`RequestContext.add_stage`
    (which only appends to a per-request list).
    """

    def __init__(
        self,
        *,
        slo_p95_s: float,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        enabled: bool = True,
        flight_capacity: int = DEFAULT_FLIGHT_CAPACITY,
        flight_dir: Optional[Path] = None,
        fast_window_s: float = DEFAULT_FAST_WINDOW_S,
        slow_window_s: float = DEFAULT_SLOW_WINDOW_S,
        burn_threshold: float = DEFAULT_BURN_THRESHOLD,
        state_provider: Optional[Callable[[], Mapping[str, object]]] = None,
    ) -> None:
        self.origin_s = perf_counter()
        self.enabled = bool(enabled)
        self.sampler = TailSampler(sample_rate)
        self.burn = BurnRateMonitor(
            slo_p95_s,
            fast_window_s=fast_window_s,
            slow_window_s=slow_window_s,
            threshold=burn_threshold,
        )
        self.flight = FlightRecorder(flight_capacity, directory=flight_dir)
        self._state_provider = state_provider
        self._id_counter = itertools.count(1)
        self.started = 0
        self.finished = 0
        #: Per-top-level-stage (count, total wall) aggregates over every
        #: traced request (kept or dropped) — the live breakdown
        #: ``repro obs watch --serve`` streams.
        self._stage_totals: Dict[str, List[float]] = {}

    # -- request lifecycle -------------------------------------------------
    def start_request(
        self, endpoint: str, request_id: Optional[str] = None
    ) -> RequestContext:
        """A fresh context; generates an id when the client sent none."""
        rid = request_id or f"req-{next(self._id_counter):06d}"
        self.started += 1
        return RequestContext(
            rid, endpoint, origin_s=self.origin_s, traced=self.enabled
        )

    def finish_request(
        self, ctx: RequestContext, status: int, wall_s: float
    ) -> Optional[AlertEvent]:
        """Seal one request: sample, burn-account, maybe alert, maybe dump.

        Returns the alert event when this request's completion fired the
        rising edge.
        """
        from repro.obs.metrics import get_registry

        ctx.finish(status, wall_s)
        self.finished += 1
        now_s = perf_counter() - self.origin_s
        good = ctx.outcome == "ok" and wall_s <= self.burn.slo_p95_s
        alert = self.burn.observe(now_s, good)
        registry = get_registry()
        if registry.enabled:
            for window, value in (
                ("fast", self.burn.burn_rate(self.burn.fast_window_s, now_s)),
                ("slow", self.burn.burn_rate(self.burn.slow_window_s, now_s)),
            ):
                registry.gauge(
                    "repro_serve_slo_burn_rate",
                    labels={"window": window},
                    help="Error-budget burn rate against the p95 SLO",
                ).set(value)
            if alert is not None:
                registry.counter(
                    "repro_serve_slo_alerts_total",
                    help="SLO burn-rate alerts raised (rising edges)",
                ).inc()
        if self.enabled:
            for stage in ctx.stages:
                if len(stage.path) != 1:
                    continue
                bucket = self._stage_totals.setdefault(stage.name, [0.0, 0.0])
                bucket[0] += 1.0
                bucket[1] += stage.wall_s
            keep, reason = self.sampler.decide(ctx)
            if keep:
                ctx.keep_reason = reason
                self.flight.record(ctx)
                if registry.enabled:
                    registry.counter(
                        "repro_serve_traces_kept_total",
                        labels={"reason": str(reason)},
                        help="Request traces kept by the tail sampler",
                    ).inc()
        if alert is not None:
            self._log_alert(alert)
            self.flight.maybe_dump("slo-burn", state=self._state(), alert=alert)
        if status >= 500 and status != 503:
            # 503 is admission policy (covered by the burn alert); 500s
            # and 504 deadline expiries are genuine post-mortem material.
            self.flight.maybe_dump(f"http-{status}", state=self._state())
        return alert

    def on_shutdown(self) -> Optional[Path]:
        """Dump the ring when the service stops with an alert still active."""
        if not self.burn.alert_active:
            return None
        return self.flight.maybe_dump("shutdown-with-alert", state=self._state())

    # -- introspection -----------------------------------------------------
    def _state(self) -> Optional[Mapping[str, object]]:
        if self._state_provider is None:
            return None
        try:
            return self._state_provider()
        except Exception:  # noqa: BLE001 - a dump must not take serving down
            return None

    def _log_alert(self, alert: AlertEvent) -> None:
        from repro.obs.logs import get_logger

        get_logger(__name__).warning(
            "SLO burn-rate alert: fast=%.1fx slow=%.1fx (threshold %.1fx, "
            "p95 SLO %.3fs)",
            alert.fast_burn,
            alert.slow_burn,
            alert.threshold,
            alert.slo_p95_s,
        )

    def stage_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Mean/total wall per top-level stage over traced requests."""
        return {
            name: {
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
            }
            for name, (count, total) in sorted(self._stage_totals.items())
        }

    def slo_stats(self) -> Dict[str, object]:
        """The ``/stats`` ``slo`` section (burn windows evaluated now)."""
        return self.burn.stats(perf_counter() - self.origin_s)

    def tracing_stats(self) -> Dict[str, object]:
        """The ``/stats`` ``tracing`` section."""
        return {
            "enabled": self.enabled,
            "started": self.started,
            "finished": self.finished,
            "sampler": self.sampler.stats(),
            "flight": self.flight.stats(),
            "stages": self.stage_breakdown(),
        }

    def summary_scalars(self) -> Dict[str, float]:
        """Flat scalars folded into the service's shutdown ledger record."""
        kept = sum(self.sampler.kept_by_reason.values())
        return {
            "slo_alerts": float(len(self.burn.alerts)),
            "traces_kept": float(kept),
            "flight_dumps": float(len(self.flight.dumps)),
        }
