"""Process-wide metrics registry: counters, gauges and histograms.

The reproduction's claims rest on fine-grained accounting — per-phase
time/energy splits, utilisation-resolved power curves, p95 tails — yet the
engines that compute them (batched sweep, vectorized Lindley, scheduler
replay) were black boxes at runtime.  This module gives every engine a
shared, inspectable instrument panel:

* :class:`Counter` — monotonically increasing totals (cache hits, jobs
  dispatched, power-state transitions);
* :class:`Gauge` — last-written values (queue depth, active node count);
* :class:`Histogram` — fixed-bucket distributions with Prometheus ``le``
  semantics (dispatch latencies); scalar observes go through
  :func:`bisect.bisect_left` (a few hundred nanoseconds) while batched
  observes use one vectorized ``searchsorted`` + ``bincount`` pass.

Instrumentation is **disabled by default** and the disabled fast path is a
single attribute check followed by ``return`` — no allocation, no state
change — so permanent instrumentation of hot loops costs effectively
nothing when nobody is looking (the zero-allocation contract is pinned in
``tests/obs/test_metrics.py``).  Enable the process-wide registry with
:func:`repro.obs.instrumented` (scoped) or ``get_registry().enable()``.

Exporters: :meth:`MetricsRegistry.snapshot` (plain dict),
:meth:`~MetricsRegistry.to_json` and :meth:`~MetricsRegistry.to_prometheus`
(text exposition format, ``scrape``-compatible).  The registry is designed
for the single-threaded simulation engines; concurrent writers would need
external locking.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "exponential_buckets",
    "linear_buckets",
    "DEFAULT_TIME_BUCKETS",
]

#: Label set attached to one instrument: an immutable, order-insensitive key.
LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` bucket edges growing geometrically from ``start``."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ReproError(
            f"need start > 0, factor > 1, count >= 1; got ({start}, {factor}, {count})"
        )
    return tuple(start * factor**i for i in range(count))


def linear_buckets(start: float, width: float, count: int) -> Tuple[float, ...]:
    """``count`` bucket edges advancing by ``width`` from ``start``."""
    if width <= 0 or count < 1:
        raise ReproError(f"need width > 0, count >= 1; got ({width}, {count})")
    return tuple(start + width * i for i in range(count))


#: Default latency buckets: 1 µs to ~0.5 s, doubling — covers a policy
#: ``select`` call (microseconds) through a whole engine interval.
DEFAULT_TIME_BUCKETS = exponential_buckets(1e-6, 2.0, 20)


class Counter:
    """A monotonically increasing total.  Created via :meth:`MetricsRegistry.counter`."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "_registry", "_value")

    def __init__(self, registry: "MetricsRegistry", name: str, help: str, labels: LabelSet):
        self._registry = registry
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative); no-op while disabled."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        """The accumulated total."""
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def _snapshot_value(self) -> object:
        return self._value


class Gauge:
    """A last-written value.  Created via :meth:`MetricsRegistry.gauge`."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "_registry", "_value")

    def __init__(self, registry: "MetricsRegistry", name: str, help: str, labels: LabelSet):
        self._registry = registry
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge; no-op while disabled."""
        if not self._registry.enabled:
            return
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        if not self._registry.enabled:
            return
        self._value += amount

    @property
    def value(self) -> float:
        """The last written value."""
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def _snapshot_value(self) -> object:
        return self._value


class Histogram:
    """A fixed-bucket distribution with Prometheus ``le`` semantics.

    ``edges`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches overflow.  A value ``v`` lands in the first bucket with
    ``v <= edge`` (edge-exact observations count toward that edge's bucket
    — the boundary contract ``tests/obs/test_metrics.py`` pins).  Bucket
    counts are kept as a plain Python list so the scalar hot path is one
    ``bisect_left`` plus a list increment; exports and the batched
    :meth:`observe_many` path are NumPy-backed.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "edges", "_registry", "_counts", "_sum", "_count")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labels: LabelSet,
        edges: Sequence[float],
    ):
        e = tuple(float(x) for x in edges)
        if not e:
            raise ReproError(f"histogram {name} needs at least one bucket edge")
        if any(b <= a for a, b in zip(e, e[1:])):
            raise ReproError(f"histogram {name} edges must be strictly increasing: {e}")
        self._registry = registry
        self.name = name
        self.help = help
        self.labels = labels
        self.edges = e
        self._counts = [0] * (len(e) + 1)  # last slot = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation; no-op while disabled."""
        if not self._registry.enabled:
            return
        self._counts[bisect_left(self.edges, value)] += 1
        self._sum += value
        self._count += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations in one vectorized pass."""
        if not self._registry.enabled:
            return
        v = np.asarray(values, dtype=float)
        if v.size == 0:
            return
        idx = np.searchsorted(self.edges, v, side="left")
        batch = np.bincount(idx, minlength=len(self._counts))
        for i, n in enumerate(batch):
            if n:
                self._counts[i] += int(n)
        self._sum += float(v.sum())
        self._count += int(v.size)

    # -- read side --------------------------------------------------------
    @property
    def counts(self) -> np.ndarray:
        """Per-bucket counts (last entry is the ``+Inf`` overflow bucket)."""
        return np.asarray(self._counts, dtype=np.int64)

    @property
    def cumulative_counts(self) -> np.ndarray:
        """Prometheus-style cumulative bucket counts."""
        return np.cumsum(self._counts)

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate in ``[0, 1]``.

        Linear interpolation inside the containing bucket (the usual
        Prometheus ``histogram_quantile`` estimate); the overflow bucket
        reports its lower edge.  Returns 0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        cum = 0
        for i, n in enumerate(self._counts):
            cum += n
            if cum >= target and n:
                if i == len(self.edges):
                    return self.edges[-1]
                lo = self.edges[i - 1] if i > 0 else 0.0
                hi = self.edges[i]
                return lo + (hi - lo) * (1.0 - (cum - target) / n)
        return self.edges[-1]

    def _reset(self) -> None:
        self._counts = [0] * (len(self.edges) + 1)
        self._sum = 0.0
        self._count = 0

    def _snapshot_value(self) -> object:
        return {
            "edges": list(self.edges),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A process-wide registry of named instruments.

    Instruments are created lazily with :meth:`counter` / :meth:`gauge` /
    :meth:`histogram`; asking for an existing ``(name, labels)`` pair
    returns the same object, and asking for an existing name with a
    different kind (or different histogram edges) raises
    :class:`~repro.errors.ReproError`.  The ``enabled`` flag gates every
    write — it is a plain attribute so hot paths pay one load per call.
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._instruments: Dict[Tuple[str, LabelSet], Instrument] = {}
        self._kinds: Dict[str, str] = {}

    # -- lifecycle --------------------------------------------------------
    def enable(self) -> None:
        """Start recording."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (instruments keep their accumulated state)."""
        self.enabled = False

    def reset(self, *, clear: bool = False) -> None:
        """Zero every instrument; ``clear=True`` also forgets them."""
        if clear:
            self._instruments.clear()
            self._kinds.clear()
            return
        for inst in self._instruments.values():
            inst._reset()

    # -- creation ---------------------------------------------------------
    def _get_or_create(
        self,
        kind: str,
        factory,
        name: str,
        help: str,
        labels: Optional[Mapping[str, str]],
    ) -> Instrument:
        if not name:
            raise ReproError("instrument name must be non-empty")
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ReproError(
                f"metric {name!r} already registered as a {known}, not a {kind}"
            )
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = factory(key[1])
            self._instruments[key] = inst
            self._kinds[name] = kind
        return inst

    def counter(
        self, name: str, *, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """Get or create the counter ``name`` for one label set."""
        return self._get_or_create(
            "counter", lambda ls: Counter(self, name, help, ls), name, help, labels
        )

    def gauge(
        self, name: str, *, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """Get or create the gauge ``name`` for one label set."""
        return self._get_or_create(
            "gauge", lambda ls: Gauge(self, name, help, ls), name, help, labels
        )

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        """Get or create the histogram ``name`` for one label set.

        Every label series of one histogram name must share bucket edges.
        """
        inst = self._get_or_create(
            "histogram",
            lambda ls: Histogram(self, name, help, ls, buckets),
            name,
            help,
            labels,
        )
        assert isinstance(inst, Histogram)
        if inst.edges != tuple(float(x) for x in buckets):
            raise ReproError(
                f"histogram {name!r} already registered with edges {inst.edges}"
            )
        return inst

    # -- access -----------------------------------------------------------
    def instruments(self) -> Iterator[Instrument]:
        """Every registered instrument, sorted by (name, labels)."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def __len__(self) -> int:
        return len(self._instruments)

    # -- cross-process merge ----------------------------------------------
    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a :meth:`snapshot` document from another registry into this one.

        The registry is process-global, so increments made in a worker
        process land in the *worker's* copy and would otherwise be lost
        when the process exits.  :mod:`repro.parallel` snapshots each
        worker's registry after its task and merges the snapshots back
        here.  Merge semantics per kind:

        * counters and histograms **accumulate** (counts, sums, totals add);
        * gauges keep the **maximum** of the current and incoming value —
          a deterministic reduction whatever order worker results arrive in
          (gauges record high-water readings like queue depth, where the
          cluster-wide max is the honest aggregate);
        * kind conflicts and histogram bucket-edge mismatches raise
          :class:`~repro.errors.ReproError`.

        Merging is bookkeeping, not measurement: it applies even while the
        registry is disabled, mirroring how :meth:`snapshot` reads state
        regardless of the ``enabled`` gate.
        """
        for name in sorted(snapshot):
            entry = snapshot[name]
            if not isinstance(entry, Mapping):
                raise ReproError(f"malformed snapshot entry for metric {name!r}")
            kind = entry.get("kind")
            help_text = str(entry.get("help", ""))
            for series in entry.get("series", ()):
                labels = dict(series.get("labels") or {})
                value = series.get("value")
                if kind == "counter":
                    inst = self.counter(name, help=help_text, labels=labels)
                    inst._value += float(value)  # type: ignore[arg-type]
                elif kind == "gauge":
                    inst = self.gauge(name, help=help_text, labels=labels)
                    inst._value = max(inst._value, float(value))  # type: ignore[arg-type]
                elif kind == "histogram":
                    if not isinstance(value, Mapping):
                        raise ReproError(
                            f"histogram {name!r} snapshot value must be a mapping"
                        )
                    hist = self.histogram(
                        name,
                        buckets=tuple(float(x) for x in value["edges"]),
                        help=help_text,
                        labels=labels,
                    )
                    counts = list(value["counts"])
                    if len(counts) != len(hist._counts):
                        raise ReproError(
                            f"histogram {name!r} snapshot has {len(counts)} buckets, "
                            f"registry has {len(hist._counts)}"
                        )
                    for i, n in enumerate(counts):
                        hist._counts[i] += int(n)
                    hist._sum += float(value["sum"])
                    hist._count += int(value["count"])
                else:
                    raise ReproError(
                        f"metric {name!r} snapshot has unknown kind {kind!r}"
                    )

    # -- exporters --------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The registry as a plain nested dict (JSON-serialisable).

        Shape: ``{name: {"kind": ..., "help": ..., "series": [{"labels":
        {...}, "value": <number or histogram dict>}, ...]}}``.
        """
        out: Dict[str, dict] = {}
        for inst in self.instruments():
            entry = out.setdefault(
                inst.name, {"kind": inst.kind, "help": inst.help, "series": []}
            )
            entry["series"].append(
                {"labels": dict(inst.labels), "value": inst._snapshot_value()}
            )
        return out

    def to_json(self, *, indent: int = 2) -> str:
        """The snapshot rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path) -> None:
        """Write the JSON snapshot to ``path``.

        Missing parent directories are created; an existing file at
        ``path`` is overwritten (each run's snapshot replaces the last).
        """
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        with open(p, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        Per the exposition-format spec, every metric family gets a
        ``# HELP`` line (help text with backslash and line-feed escaped)
        and a ``# TYPE`` line; label values escape backslash, double
        quote and line feed (pinned in ``tests/obs/test_prometheus.py``).
        """
        lines: List[str] = []
        seen_header = set()
        for inst in self.instruments():
            if inst.name not in seen_header:
                seen_header.add(inst.name)
                lines.append(f"# HELP {inst.name} {_escape_help(inst.help)}")
                lines.append(f"# TYPE {inst.name} {inst.kind}")
            if isinstance(inst, Histogram):
                cum = 0
                for edge, n in zip(inst.edges, inst._counts):
                    cum += n
                    lines.append(
                        f"{inst.name}_bucket{_prom_labels(inst.labels, le=f'{edge:.9g}')} {cum}"
                    )
                cum += inst._counts[-1]
                lines.append(
                    f"{inst.name}_bucket{_prom_labels(inst.labels, le='+Inf')} {cum}"
                )
                lines.append(f"{inst.name}_sum{_prom_labels(inst.labels)} {inst._sum:.9g}")
                lines.append(f"{inst.name}_count{_prom_labels(inst.labels)} {inst._count}")
            else:
                lines.append(
                    f"{inst.name}{_prom_labels(inst.labels)} {inst.value:.9g}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _escape_help(text: str) -> str:
    """HELP-text escaping per the exposition format: ``\\`` and line feed."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    """Label-value escaping per the exposition format: ``\\``, ``"``, LF."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: LabelSet, **extra: str) -> str:
    items = list(labels) + sorted(extra.items())
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


#: The process-wide registry every engine instruments against.  Disabled by
#: default; scope enablement with :func:`repro.obs.instrumented`.
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _REGISTRY
