"""Shared benchmark timer and the BENCH_*.json envelope.

Before this module each benchmark driver hand-rolled its own
``perf_counter`` loop with its own warmup/repeat conventions (the sweep
took a min over warm repeats with no explicit warmup, the MC benchmark
timed single shots, the scheduler repeated whole studies) and its own
JSON-writing code.  Every driver now measures through :func:`measure`
— explicit ``warmup`` runs discarded, ``repeats`` timed runs, best/mean
reported — and writes through :func:`write_bench_json`, which gives all
``BENCH_*.json`` artifacts one shared envelope::

    {"schema": "repro-bench/1", "benchmark": "<name>", "params": {...},
     "timings_s": {...}, ...benchmark-specific sections...}

plus a ``BENCH_<name>.metrics.json`` *sidecar* holding the metrics-registry
snapshot collected while the benchmark ran (dropped silently when the
run was not instrumented).  ``tools/bench_compare.py`` consumes the
envelope to gate CI on floor-bearing metric regressions.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "BENCH_SCHEMA",
    "Timing",
    "measure",
    "timed",
    "bench_envelope",
    "write_bench_json",
    "metrics_sidecar_path",
]

#: Version tag of the shared BENCH_*.json envelope.
BENCH_SCHEMA = "repro-bench/1"


@dataclass(frozen=True)
class Timing:
    """Wall-clock timings of one measured callable."""

    times_s: Tuple[float, ...]
    warmup: int

    @property
    def repeats(self) -> int:
        """Number of timed (post-warmup) runs."""
        return len(self.times_s)

    @property
    def best_s(self) -> float:
        """Minimum over the timed runs — the usual noise shield."""
        return min(self.times_s)

    @property
    def mean_s(self) -> float:
        """Mean over the timed runs."""
        return sum(self.times_s) / len(self.times_s)


def measure(
    fn: Callable[[], object], *, repeats: int = 3, warmup: int = 1
) -> Tuple[object, Timing]:
    """Time ``fn()``: ``warmup`` discarded runs, then ``repeats`` timed runs.

    Returns ``(last_result, Timing)`` — the callable's final return value
    is handed back so benchmarks can verify what they just timed.
    """
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ReproError(f"warmup must be >= 0, got {warmup}")
    result: object = None
    for _ in range(warmup):
        result = fn()
    times = []
    for _ in range(repeats):
        t0 = perf_counter()
        result = fn()
        times.append(perf_counter() - t0)
    return result, Timing(times_s=tuple(times), warmup=warmup)


@contextmanager
def timed() -> Iterator[Callable[[], float]]:
    """Context manager timing its body; yields a callable reading elapsed
    seconds (valid both inside and after the block)::

        with timed() as elapsed:
            work()
        print(elapsed())
    """
    t0 = perf_counter()
    done: Dict[str, float] = {}

    def elapsed() -> float:
        return done.get("t", perf_counter() - t0)

    try:
        yield elapsed
    finally:
        done["t"] = perf_counter() - t0


def bench_envelope(
    benchmark: str,
    params: Dict[str, object],
    timings_s: Dict[str, object],
    **sections: object,
) -> Dict[str, object]:
    """Assemble the shared BENCH_*.json envelope around one benchmark run."""
    if not benchmark:
        raise ReproError("benchmark name must be non-empty")
    out: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "benchmark": benchmark,
        "params": dict(params),
        "timings_s": dict(timings_s),
    }
    for key, value in sections.items():
        out[key] = value
    return out


def metrics_sidecar_path(path) -> Path:
    """The metrics sidecar path of one BENCH artifact
    (``BENCH_x.json`` → ``BENCH_x.metrics.json``)."""
    p = Path(path)
    return p.with_name(p.stem + ".metrics.json")


def write_bench_json(path, result: Dict[str, object]) -> Optional[Path]:
    """Write one benchmark envelope, splitting metrics into the sidecar.

    A ``"metrics"`` key in ``result`` (the registry snapshot collected
    during the run) is written to ``metrics_sidecar_path(path)`` instead of
    the main artifact; returns the sidecar path, or None when the run was
    not instrumented.  Missing parent directories are created and existing
    artifacts are overwritten (each run's envelope replaces the last).

    Writing an envelope also appends a ``bench/<name>`` record to the run
    ledger (:func:`repro.obs.ledger.record_bench_result`) so every
    benchmark run — console main, pytest driver, ad-hoc script — lands in
    the longitudinal history without the caller doing anything; disable
    with ``REPRO_LEDGER=0``.
    """
    payload = dict(result)
    metrics = payload.pop("metrics", None)
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    from repro.obs.ledger import record_bench_result

    record_bench_result(payload)
    if not metrics:
        return None
    sidecar = metrics_sidecar_path(path)
    with open(sidecar, "w", encoding="utf-8") as fh:
        json.dump(metrics, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return sidecar
