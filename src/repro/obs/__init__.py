"""Unified observability layer: metrics, tracing, timing, logging — and
the longitudinal layer on top: run ledger, drift detection, claim
monitors, dashboard.

The point-in-time modules share one design rule — *near-zero cost while
disabled, zero effect on results while enabled*:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` of
  counters, gauges, and fixed-bucket histograms with JSON and
  Prometheus-text exporters;
* :mod:`repro.obs.tracing` — nestable :func:`span` context managers
  recording wall/CPU time into a ring buffer, exportable as Chrome-trace
  JSON and as an ASCII flame summary;
* :mod:`repro.obs.timer` — the shared benchmark timer and the
  ``BENCH_*.json`` envelope;
* :mod:`repro.obs.logs` — the ``repro`` stdlib-logging hierarchy;
* :mod:`repro.obs.request` — per-request span trees, tail-based
  sampling, SLO burn-rate alerting and the flight recorder behind the
  serving stack (``repro serve``).

The longitudinal modules remember across runs:

* :mod:`repro.obs.ledger` — the append-only ``repro-run/1`` JSONL store
  every CLI subcommand, benchmark and monitor appends to;
* :mod:`repro.obs.drift` — Welch/bootstrap/changepoint drift detection
  over ledger scalar histories (``repro obs diff``);
* :mod:`repro.obs.monitors` — the paper's load-bearing claims as
  SLO-style checks with tolerance bands (``repro obs check``);
* :mod:`repro.obs.dashboard` — the sparkline trend dashboard
  (``repro obs report`` / ``watch``).

Both the registry and the tracer are process-wide singletons, disabled
by default; enable them together for a bounded scope with::

    with instrumented():
        run_scheduling_study(...)

Instrumentation never touches RNG streams or floating-point work, so a
seeded run produces bit-identical results with observability on or off
(covered by ``tests/obs/test_instrumentation.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.dashboard import render_dashboard
from repro.obs.drift import (
    MetricDrift,
    bench_scalars,
    diff_history,
    diff_ledger,
    render_drifts,
)
from repro.obs.ledger import (
    RUN_SCHEMA,
    Ledger,
    RunRecord,
    config_digest,
    default_ledger,
    ledger_enabled,
    new_record,
    record_bench_result,
)
from repro.obs.logs import LOG_LEVELS, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
    linear_buckets,
)
from repro.obs.monitors import (
    MONITORS,
    ClaimMonitor,
    MonitorResult,
    monitor_names,
    render_monitor_report,
    run_monitors,
)
from repro.obs.timer import (
    BENCH_SCHEMA,
    Timing,
    bench_envelope,
    measure,
    metrics_sidecar_path,
    timed,
    write_bench_json,
)
from repro.obs.request import (
    FLIGHT_SCHEMA,
    REQUEST_ID_HEADER,
    AlertEvent,
    BurnRateMonitor,
    FlightRecorder,
    RequestContext,
    RequestRecorder,
    StageRecord,
    TailSampler,
    classify_outcome,
    flight_chrome_trace,
    flight_document,
    list_flight_dumps,
    load_flight_dump,
    span_coverage,
)
from repro.obs.tracing import FlameRow, SpanRecord, Tracer, get_tracer, span

__all__ = [
    # metrics
    "MetricsRegistry",
    "get_registry",
    "exponential_buckets",
    "linear_buckets",
    "DEFAULT_TIME_BUCKETS",
    # tracing
    "Tracer",
    "SpanRecord",
    "FlameRow",
    "get_tracer",
    "span",
    # timer
    "BENCH_SCHEMA",
    "Timing",
    "measure",
    "timed",
    "bench_envelope",
    "write_bench_json",
    "metrics_sidecar_path",
    # logs
    "get_logger",
    "configure_logging",
    "LOG_LEVELS",
    # scope
    "instrumented",
    # ledger
    "RUN_SCHEMA",
    "RunRecord",
    "Ledger",
    "config_digest",
    "default_ledger",
    "ledger_enabled",
    "new_record",
    "record_bench_result",
    # drift
    "MetricDrift",
    "bench_scalars",
    "diff_history",
    "diff_ledger",
    "render_drifts",
    # monitors
    "MONITORS",
    "ClaimMonitor",
    "MonitorResult",
    "monitor_names",
    "run_monitors",
    "render_monitor_report",
    # dashboard
    "render_dashboard",
    # request-level observability
    "REQUEST_ID_HEADER",
    "FLIGHT_SCHEMA",
    "AlertEvent",
    "BurnRateMonitor",
    "FlightRecorder",
    "RequestContext",
    "RequestRecorder",
    "StageRecord",
    "TailSampler",
    "classify_outcome",
    "flight_chrome_trace",
    "flight_document",
    "list_flight_dumps",
    "load_flight_dump",
    "span_coverage",
]


@contextmanager
def instrumented(
    *, metrics: bool = True, tracing: bool = True, reset: bool = True
) -> Iterator[None]:
    """Enable the process-wide registry and tracer for one scope.

    Restores each singleton's previous enabled state on exit, so nested
    or overlapping scopes compose; ``reset=True`` (the default) clears
    previously collected data first so the scope's exports describe only
    the scope.  Collected data stays readable after exit.
    """
    registry = get_registry()
    tracer = get_tracer()
    prev_metrics = registry.enabled
    prev_tracing = tracer.enabled
    if metrics:
        if reset:
            registry.reset(clear=True)
        registry.enable()
    if tracing:
        if reset:
            tracer.reset()
        tracer.enable()
    try:
        yield
    finally:
        registry.enabled = prev_metrics
        tracer.enabled = prev_tracing
