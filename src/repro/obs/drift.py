"""Cross-run drift detection over the run ledger.

PR 4's CI gate (``tools/bench_compare.py``) compared one fresh
``BENCH_*.json`` artifact against the single copy committed at ``HEAD``
via ``git show`` — a two-point comparison with no memory and no
statistics.  With the ledger (:mod:`repro.obs.ledger`) recording every
run, drift detection becomes a *series* problem: for each result scalar
of each run name we hold an ordered history, and this module answers
"has this metric moved?" three complementary ways:

* **Relative change** — the latest value against the mean of the prior
  history, flagged beyond a tolerance band.  This is the load-bearing
  check: it needs only two records and is what gates CI.
* **Welch's t-test / bootstrap CI** — when the history is long enough to
  form two windows, an unequal-variance t-test (via :mod:`scipy.stats`,
  imported lazily like :mod:`repro.queueing.mc` does) and a seeded
  bootstrap confidence interval on the window mean difference separate
  real shifts from run-to-run noise.
* **Changepoint flagging** — the split of the full series maximising the
  standardised mean shift, so a drift report can say not just *that* a
  metric moved but *where in the history* it moved.

Direction matters: benchmark throughput/speedup scalars are
higher-is-better (a drop is a regression, a rise an improvement), while
generic result scalars are two-sided (any move beyond tolerance is
drift).  :data:`HIGHER_IS_BETTER_PREFIXES` encodes the convention.

All statistics are deterministic: the bootstrap uses a fixed seeded
generator, and nothing here consumes the experiment RNG registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.obs.ledger import Ledger

__all__ = [
    "BENCH_FLOOR_METRICS",
    "HIGHER_IS_BETTER_PREFIXES",
    "MetricDrift",
    "bench_scalars",
    "bootstrap_mean_diff",
    "changepoint",
    "diff_history",
    "diff_ledger",
    "lookup",
    "render_drifts",
    "welch_t_pvalue",
]

#: Floor-bearing dotted metric paths per benchmark envelope, the same
#: numbers ``tools/bench_compare.py`` gates CI on.  Keys are benchmark
#: names (the ``benchmark`` field of a ``repro-bench/1`` envelope).
BENCH_FLOOR_METRICS: Dict[str, Tuple[str, ...]] = {
    "sweep": ("speedup.batched_warm",),
    "mc": (
        "scenarios.md1.speedup.simulate_phase",
        "scenarios.service_model.speedup.simulate_phase",
        # The workers>1 parallel arm of repro.parallel.mc; absent from
        # serial envelopes, and absent paths are skipped, so serial runs
        # are unaffected.
        "scenarios.md1.speedup.with_stats_parallel",
        "scenarios.service_model.speedup.with_stats_parallel",
    ),
    "scheduler": ("events_per_s",),
}

#: Scalar-name prefixes where larger is better, so only drops count as
#: regressions.  Everything else is judged two-sided.
HIGHER_IS_BETTER_PREFIXES: Tuple[str, ...] = (
    "speedup.",
    "events_per_s",
    "agreement_fraction",
)

#: Standardised-shift score above which a changepoint is flagged.
CHANGEPOINT_THRESHOLD = 3.0


def lookup(doc: Mapping[str, object], dotted: str) -> float:
    """Resolve one dotted path (``a.b.c``) in a nested mapping to a float."""
    node: object = doc
    for part in dotted.split("."):
        if not isinstance(node, Mapping) or part not in node:
            raise KeyError(f"path {dotted!r} missing at {part!r}")
        node = node[part]
    return float(node)  # type: ignore[arg-type]


def bench_scalars(
    benchmark: str, result: Mapping[str, object]
) -> Dict[str, float]:
    """Extract one ``repro-bench/1`` envelope's ledger scalars.

    The floor-bearing metrics (under their dotted paths, so drift
    reports and ``tools/bench_compare.py`` speak the same names) plus
    the envelope's top-level wall timings as ``timings_s.<phase>``.
    Floor paths absent from the envelope are skipped, not errors — the
    gate in ``bench_compare`` handles missing paths loudly.
    """
    scalars: Dict[str, float] = {}
    for path in BENCH_FLOOR_METRICS.get(benchmark, ()):
        try:
            scalars[path] = lookup(result, path)
        except (KeyError, TypeError, ValueError):
            continue
    timings = result.get("timings_s")
    if isinstance(timings, Mapping):
        for phase, value in timings.items():
            if isinstance(value, (int, float)):
                scalars[f"timings_s.{phase}"] = float(value)
    return scalars


def higher_is_better(scalar: str) -> bool:
    """Whether a scalar follows the larger-is-better convention."""
    return any(scalar.startswith(p) for p in HIGHER_IS_BETTER_PREFIXES)


# -- statistics -----------------------------------------------------------


def welch_t_pvalue(a: Sequence[float], b: Sequence[float]) -> Optional[float]:
    """Two-sided Welch (unequal-variance) t-test p-value, or None when
    either sample is too small or degenerate for the test to mean anything.
    """
    if len(a) < 2 or len(b) < 2:
        return None
    xa = np.asarray(a, dtype=float)
    xb = np.asarray(b, dtype=float)
    if float(xa.std()) == 0.0 and float(xb.std()) == 0.0:
        # Identical-variance-free samples: equal means agree perfectly,
        # different means differ certainly.
        return 1.0 if float(xa.mean()) == float(xb.mean()) else 0.0
    from scipy import stats  # heavy import deferred, as in queueing.mc

    return float(stats.ttest_ind(xa, xb, equal_var=False).pvalue)


def bootstrap_mean_diff(
    a: Sequence[float],
    b: Sequence[float],
    *,
    n_boot: int = 2000,
    level: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float]:
    """Seeded percentile-bootstrap CI of ``mean(b) - mean(a)``.

    Deterministic for fixed inputs and seed; vectorised (one resample
    matrix per side, no Python loop over replicates).
    """
    if not a or not b:
        raise ReproError("bootstrap needs non-empty samples on both sides")
    if not 0.0 < level < 1.0:
        raise ReproError(f"level must be in (0, 1), got {level}")
    rng = np.random.default_rng(seed)
    xa = np.asarray(a, dtype=float)
    xb = np.asarray(b, dtype=float)
    means_a = xa[rng.integers(0, len(xa), size=(n_boot, len(xa)))].mean(axis=1)
    means_b = xb[rng.integers(0, len(xb), size=(n_boot, len(xb)))].mean(axis=1)
    diffs = means_b - means_a
    lo = float(np.quantile(diffs, (1.0 - level) / 2.0))
    hi = float(np.quantile(diffs, 1.0 - (1.0 - level) / 2.0))
    return lo, hi


def changepoint(values: Sequence[float]) -> Tuple[Optional[int], float]:
    """The split index maximising the standardised mean shift.

    Returns ``(index, score)`` where ``values[:index]`` / ``values[index:]``
    are the two regimes; ``(None, 0.0)`` when the series is too short
    (< 4 points) or flat.  The score at each split is the two-sample
    t statistic ``|mean_right - mean_left| / s_within * sqrt(k (n-k) / n)``
    with ``s_within`` the *pooled within-segment* standard deviation —
    standardising by the global std would fold the shift itself into the
    denominator and deflate clean steps below any threshold.  A perfectly
    noise-free step has ``s_within = 0`` and scores ``inf``.  Flag the
    best split when its score exceeds :data:`CHANGEPOINT_THRESHOLD`.
    """
    x = np.asarray(values, dtype=float)
    n = len(x)
    if n < 4:
        return None, 0.0
    if float(x.std(ddof=1)) == 0.0:
        return None, 0.0
    prefix = np.cumsum(x)
    prefix_sq = np.cumsum(x * x)
    best_k, best_score = None, 0.0
    for k in range(2, n - 1):
        sum_l, sum_r = prefix[k - 1], prefix[-1] - prefix[k - 1]
        mean_l, mean_r = sum_l / k, sum_r / (n - k)
        ss_l = prefix_sq[k - 1] - sum_l * mean_l
        ss_r = (prefix_sq[-1] - prefix_sq[k - 1]) - sum_r * mean_r
        s_within = math.sqrt(max(0.0, ss_l + ss_r) / (n - 2))
        shift = abs(mean_r - mean_l)
        if s_within == 0.0:
            score = math.inf if shift > 0.0 else 0.0
        else:
            score = shift / s_within * math.sqrt(k * (n - k) / n)
        if score > best_score:
            best_k, best_score = k, score
    return best_k, best_score


# -- the drift report -----------------------------------------------------


@dataclass(frozen=True)
class MetricDrift:
    """Drift verdict for one scalar of one run name."""

    name: str
    scalar: str
    n: int
    latest: float
    baseline_mean: float
    #: ``(latest - baseline_mean) / |baseline_mean|``.
    rel_change: float
    #: ``regression`` | ``improvement`` | ``stable``.
    status: str
    #: Welch p-value of recent-vs-earlier windows (None when too short).
    p_value: Optional[float] = None
    #: Bootstrap CI of the window mean shift (None when too short).
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None
    #: Flagged changepoint split index and its score.
    changepoint_index: Optional[int] = None
    changepoint_score: float = 0.0

    @property
    def drifted(self) -> bool:
        return self.status != "stable"


def diff_history(
    name: str,
    scalar: str,
    values: Sequence[float],
    *,
    tolerance: float = 0.25,
    level: float = 0.95,
    seed: int = 0,
) -> MetricDrift:
    """Judge one scalar's ordered history (oldest first, >= 2 points).

    The verdict compares the latest value against the mean of all prior
    values; when the history holds >= 6 points the recent third (min 2)
    is tested against the remainder with Welch + bootstrap, and the full
    series is scanned for a changepoint.
    """
    if len(values) < 2:
        raise ReproError(
            f"{name}:{scalar} needs >= 2 recorded values, got {len(values)}"
        )
    if not 0.0 < tolerance < 1.0:
        raise ReproError(f"tolerance must be in (0, 1), got {tolerance}")
    x = [float(v) for v in values]
    latest = x[-1]
    baseline = x[:-1]
    base_mean = sum(baseline) / len(baseline)
    if base_mean == 0.0:
        rel = 0.0 if latest == 0.0 else math.inf
    else:
        rel = (latest - base_mean) / abs(base_mean)

    if abs(rel) <= tolerance:
        status = "stable"
    elif higher_is_better(scalar):
        status = "regression" if rel < 0.0 else "improvement"
    else:
        status = "regression"

    p_value: Optional[float] = None
    ci: Tuple[Optional[float], Optional[float]] = (None, None)
    if len(x) >= 6:
        window = max(2, len(x) // 3)
        earlier, recent = x[:-window], x[-window:]
        p_value = welch_t_pvalue(earlier, recent)
        ci = bootstrap_mean_diff(earlier, recent, level=level, seed=seed)
    cp_index, cp_score = changepoint(x)
    if cp_score < CHANGEPOINT_THRESHOLD:
        cp_index = None
    return MetricDrift(
        name=name,
        scalar=scalar,
        n=len(x),
        latest=latest,
        baseline_mean=base_mean,
        rel_change=rel,
        status=status,
        p_value=p_value,
        ci_low=ci[0],
        ci_high=ci[1],
        changepoint_index=cp_index,
        changepoint_score=cp_score,
    )


def diff_ledger(
    ledger: Ledger,
    *,
    names: Optional[Sequence[str]] = None,
    scalars: Optional[Sequence[str]] = None,
    tolerance: float = 0.25,
    level: float = 0.95,
    seed: int = 0,
) -> List[MetricDrift]:
    """Drift verdicts for every (name, scalar) pair with >= 2 ledger records.

    ``names``/``scalars`` filter which run names and which scalar keys are
    judged; unfiltered, every scalar of every recorded name is covered.
    Pairs with fewer than two recorded values are silently skipped — a
    fresh ledger produces an empty report, not an error.
    """
    targets = list(names) if names else ledger.names()
    out: List[MetricDrift] = []
    for name in targets:
        latest = ledger.latest(name)
        if latest is None:
            continue
        keys = [k for k in sorted(latest.scalars) if not scalars or k in scalars]
        for key in keys:
            history = [v for _, v in ledger.history(name, key)]
            if len(history) < 2:
                continue
            out.append(
                diff_history(
                    name,
                    key,
                    history,
                    tolerance=tolerance,
                    level=level,
                    seed=seed,
                )
            )
    return out


def render_drifts(drifts: Sequence[MetricDrift]) -> str:
    """Human-readable drift table (one line per judged scalar)."""
    if not drifts:
        return "no metric has >= 2 ledger records yet; nothing to diff"
    lines = []
    width = max(len(f"{d.name}:{d.scalar}") for d in drifts)
    for d in drifts:
        tag = {"stable": "ok", "regression": "REGRESSION", "improvement": "improved"}[
            d.status
        ]
        extras = []
        if d.p_value is not None:
            extras.append(f"welch p={d.p_value:.3f}")
        if d.ci_low is not None and d.ci_high is not None:
            extras.append(f"shift CI [{d.ci_low:+.3g}, {d.ci_high:+.3g}]")
        if d.changepoint_index is not None:
            extras.append(
                f"changepoint @ {d.changepoint_index}/{d.n}"
                f" (score {d.changepoint_score:.1f})"
            )
        suffix = f"  ({', '.join(extras)})" if extras else ""
        lines.append(
            f"{f'{d.name}:{d.scalar}':<{width}}  "
            f"{d.latest:>12.4g} vs {d.baseline_mean:>12.4g}  "
            f"{d.rel_change:+8.1%}  {tag}{suffix}"
        )
    return "\n".join(lines)
