"""The ASCII ledger dashboard behind ``repro obs report`` / ``watch``.

One screen summarising the run ledger: per run name, the newest record's
identity (git SHA, seed, age) and, per result scalar, a sparkline of the
recorded history (oldest left, newest right, via
:func:`repro.viz.ascii.render_sparkline`) with the latest value and its
change against the prior mean.  Drift verdicts from
:mod:`repro.obs.drift` annotate rows that moved beyond tolerance, so the
dashboard is the human view over the same statistics ``repro obs diff``
gates on.

``repro obs watch`` re-renders this dashboard every interval — there is
no terminal-UI machinery here, just a string; the CLI owns the loop.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.drift import MetricDrift, diff_ledger
from repro.obs.ledger import Ledger
from repro.viz.ascii import render_sparkline

__all__ = ["render_dashboard", "render_flight_summary", "render_serve_watch"]

#: Sparkline width of the history column.
_SPARK_WIDTH = 32


def _short_sha(sha: str) -> str:
    return sha[:10] if sha and sha != "unknown" else "unknown"


def render_dashboard(
    ledger: Ledger,
    *,
    names: Optional[Sequence[str]] = None,
    tolerance: float = 0.25,
) -> str:
    """The ledger as one ASCII dashboard string.

    ``names`` restricts to a subset of run names; default is everything
    in the live store.  An empty ledger renders a hint, not an error.
    """
    targets = list(names) if names else ledger.names()
    targets = [n for n in targets if ledger.latest(n) is not None]
    if not targets:
        return (
            "run ledger is empty (no records under "
            f"{ledger.root}); run any `repro` command or "
            "`repro obs check` to populate it"
        )
    drifts: Dict[tuple, MetricDrift] = {
        (d.name, d.scalar): d
        for d in diff_ledger(ledger, names=targets, tolerance=tolerance)
    }
    lines: List[str] = [f"Run ledger dashboard  ({ledger.root})", ""]
    for name in targets:
        latest = ledger.latest(name)
        assert latest is not None  # filtered above
        n_records = len(ledger.records(name=name))
        head = (
            f"{name}  [{latest.kind}]  {n_records} run(s)  "
            f"last: {_short_sha(latest.git_sha)}"
            + (f"  seed={latest.seed}" if latest.seed is not None else "")
            + f"  {latest.timestamp_utc}"
        )
        lines.append(head)
        if not latest.scalars:
            lines.append("    (no result scalars recorded)")
            lines.append("")
            continue
        key_width = max(len(k) for k in latest.scalars)
        for key in sorted(latest.scalars):
            history = [v for _, v in ledger.history(name, key)]
            spark = render_sparkline(history, width=_SPARK_WIDTH)
            drift = drifts.get((name, key))
            if drift is not None and drift.drifted:
                tag = f"  <- {drift.status.upper()} {drift.rel_change:+.1%}"
            elif drift is not None:
                tag = f"  ({drift.rel_change:+.1%} vs mean)"
            else:
                tag = ""
            lines.append(
                f"    {key:<{key_width}}  |{spark:<{_SPARK_WIDTH}}|  "
                f"{latest.scalars[key]:.6g}{tag}"
            )
        lines.append("")
    total = len(ledger)
    flagged = sum(1 for d in drifts.values() if d.drifted)
    lines.append(
        f"{total} record(s), {len(targets)} name(s), "
        + (f"{flagged} drifted metric(s)" if flagged else "no drift")
    )
    return "\n".join(lines)


def render_serve_watch(
    stats: Mapping[str, object],
    burn_history: Sequence[float] = (),
) -> str:
    """One live-service screen from a ``/stats`` document.

    The string behind ``repro obs watch --serve URL``: SLO burn rate
    (with a sparkline over the polled history), outcome counters, and
    the per-stage latency breakdown the request recorder aggregates.
    Pure rendering — the CLI owns the polling loop.
    """
    service = dict(stats.get("service") or {})
    slo = dict(stats.get("slo") or {})
    tracing = dict(stats.get("tracing") or {})
    admission = dict(stats.get("admission") or {})
    cache = dict(stats.get("cache") or {})
    lines: List[str] = [
        (
            f"Serve watch  uptime {float(service.get('uptime_s') or 0.0):.0f}s  "
            f"{int(service.get('total') or 0)} request(s)"
        ),
        "",
    ]
    alert = "ALERT" if slo.get("alert_active") else "ok"
    spark = render_sparkline(list(burn_history), width=_SPARK_WIDTH)
    lines.append(
        f"  SLO p95 {float(slo.get('slo_p95_s') or 0.0) * 1e3:g} ms  "
        f"burn fast {float(slo.get('fast_burn') or 0.0):.2f}x / "
        f"slow {float(slo.get('slow_burn') or 0.0):.2f}x  "
        f"(threshold {float(slo.get('threshold') or 0.0):g}x)  [{alert}]"
    )
    lines.append(
        f"  burn history  |{spark:<{_SPARK_WIDTH}}|  "
        f"alerts {int(slo.get('alerts') or 0)}  "
        f"good {int(slo.get('good') or 0)}  bad {int(slo.get('bad') or 0)}"
    )
    lines.append(
        f"  cache hit {float(cache.get('hit_fraction') or 0.0):.1%}  "
        f"shed {int(admission.get('shed') or 0)}  "
        f"depth limit {int(admission.get('depth_limit') or 0)}"
    )
    statuses = dict(service.get("statuses") or {})
    if statuses:
        rendered = "  ".join(
            f"{code}:{count}" for code, count in sorted(statuses.items())
        )
        lines.append(f"  statuses  {rendered}")
    stages = dict(tracing.get("stages") or {})
    if stages:
        lines.append("")
        lines.append("  stage latency (mean over traced requests)")
        name_width = max(len(n) for n in stages)
        for name in sorted(
            stages, key=lambda n: -float(dict(stages[n]).get("total_s") or 0.0)
        ):
            row = dict(stages[name])
            lines.append(
                f"    {name:<{name_width}}  "
                f"mean {float(row.get('mean_s') or 0.0) * 1e3:8.3f} ms  "
                f"x{int(row.get('count') or 0)}"
            )
    flight = dict(tracing.get("flight") or {})
    sampler = dict(tracing.get("sampler") or {})
    kept = sum(int(v) for v in dict(sampler.get("kept_by_reason") or {}).values())
    lines.append("")
    lines.append(
        f"  traces kept {kept} / {int(sampler.get('decided') or 0)} decided  "
        f"flight ring {int(flight.get('entries') or 0)}"
        f"/{int(flight.get('capacity') or 0)}  "
        f"dumps {int(flight.get('dumps') or 0)}"
    )
    return "\n".join(lines)


def render_flight_summary(
    doc: Mapping[str, object], *, path: Optional[str] = None
) -> str:
    """One flight-recorder dump as a post-mortem screen.

    Header (reason, alert, slowest request + span coverage) plus the
    slowest request's stage tree — where its wall time actually went.
    """
    requests = list(doc.get("requests") or [])
    slowest = dict(doc.get("slowest") or {})
    alert = doc.get("alert")
    lines: List[str] = []
    title = f"Flight dump  [{doc.get('reason')}]  {doc.get('created_utc')}"
    if path:
        title += f"  ({path})"
    lines.append(title)
    if alert:
        a = dict(alert)
        lines.append(
            f"  alert: burn fast {float(a.get('fast_burn') or 0.0):.1f}x / "
            f"slow {float(a.get('slow_burn') or 0.0):.1f}x over threshold "
            f"{float(a.get('threshold') or 0.0):g}x "
            f"(p95 SLO {float(a.get('slo_p95_s') or 0.0) * 1e3:g} ms)"
        )
    outcomes: Dict[str, int] = {}
    for req in requests:
        key = str(dict(req).get("outcome") or "?")
        outcomes[key] = outcomes.get(key, 0) + 1
    rendered = "  ".join(f"{k}:{v}" for k, v in sorted(outcomes.items()))
    lines.append(f"  {len(requests)} traced request(s)  {rendered}")
    if not slowest:
        return "\n".join(lines)
    lines.append(
        f"  slowest: {slowest.get('request_id')}  "
        f"{slowest.get('endpoint')}  status {slowest.get('status')}  "
        f"{float(slowest.get('wall_s') or 0.0) * 1e3:.2f} ms  "
        f"span coverage {float(slowest.get('coverage') or 0.0):.1%}"
    )
    target = next(
        (
            dict(r)
            for r in requests
            if dict(r).get("request_id") == slowest.get("request_id")
        ),
        None,
    )
    if target is None:
        return "\n".join(lines)
    lines.append("")
    lines.append("  stage tree (slowest request)")
    for stage in sorted(
        target.get("stages") or [], key=lambda s: float(dict(s).get("t0_s") or 0.0)
    ):
        stage = dict(stage)
        depth = max(len(list(stage.get("path") or [])) - 1, 0)
        attrs = dict(stage.get("attrs") or {})
        note = (
            "  " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            if attrs
            else ""
        )
        lines.append(
            f"    {'  ' * depth}{stage.get('name')}  "
            f"{float(stage.get('wall_s') or 0.0) * 1e3:.3f} ms{note}"
        )
    return "\n".join(lines)
