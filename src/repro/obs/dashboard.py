"""The ASCII ledger dashboard behind ``repro obs report`` / ``watch``.

One screen summarising the run ledger: per run name, the newest record's
identity (git SHA, seed, age) and, per result scalar, a sparkline of the
recorded history (oldest left, newest right, via
:func:`repro.viz.ascii.render_sparkline`) with the latest value and its
change against the prior mean.  Drift verdicts from
:mod:`repro.obs.drift` annotate rows that moved beyond tolerance, so the
dashboard is the human view over the same statistics ``repro obs diff``
gates on.

``repro obs watch`` re-renders this dashboard every interval — there is
no terminal-UI machinery here, just a string; the CLI owns the loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.drift import MetricDrift, diff_ledger
from repro.obs.ledger import Ledger
from repro.viz.ascii import render_sparkline

__all__ = ["render_dashboard"]

#: Sparkline width of the history column.
_SPARK_WIDTH = 32


def _short_sha(sha: str) -> str:
    return sha[:10] if sha and sha != "unknown" else "unknown"


def render_dashboard(
    ledger: Ledger,
    *,
    names: Optional[Sequence[str]] = None,
    tolerance: float = 0.25,
) -> str:
    """The ledger as one ASCII dashboard string.

    ``names`` restricts to a subset of run names; default is everything
    in the live store.  An empty ledger renders a hint, not an error.
    """
    targets = list(names) if names else ledger.names()
    targets = [n for n in targets if ledger.latest(n) is not None]
    if not targets:
        return (
            "run ledger is empty (no records under "
            f"{ledger.root}); run any `repro` command or "
            "`repro obs check` to populate it"
        )
    drifts: Dict[tuple, MetricDrift] = {
        (d.name, d.scalar): d
        for d in diff_ledger(ledger, names=targets, tolerance=tolerance)
    }
    lines: List[str] = [f"Run ledger dashboard  ({ledger.root})", ""]
    for name in targets:
        latest = ledger.latest(name)
        assert latest is not None  # filtered above
        n_records = len(ledger.records(name=name))
        head = (
            f"{name}  [{latest.kind}]  {n_records} run(s)  "
            f"last: {_short_sha(latest.git_sha)}"
            + (f"  seed={latest.seed}" if latest.seed is not None else "")
            + f"  {latest.timestamp_utc}"
        )
        lines.append(head)
        if not latest.scalars:
            lines.append("    (no result scalars recorded)")
            lines.append("")
            continue
        key_width = max(len(k) for k in latest.scalars)
        for key in sorted(latest.scalars):
            history = [v for _, v in ledger.history(name, key)]
            spark = render_sparkline(history, width=_SPARK_WIDTH)
            drift = drifts.get((name, key))
            if drift is not None and drift.drifted:
                tag = f"  <- {drift.status.upper()} {drift.rel_change:+.1%}"
            elif drift is not None:
                tag = f"  ({drift.rel_change:+.1%} vs mean)"
            else:
                tag = ""
            lines.append(
                f"    {key:<{key_width}}  |{spark:<{_SPARK_WIDTH}}|  "
                f"{latest.scalars[key]:.6g}{tag}"
            )
        lines.append("")
    total = len(ledger)
    flagged = sum(1 for d in drifts.values() if d.drifted)
    lines.append(
        f"{total} record(s), {len(targets)} name(s), "
        + (f"{flagged} drifted metric(s)" if flagged else "no drift")
    )
    return "\n".join(lines)
