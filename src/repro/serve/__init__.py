"""repro.serve — the always-on recommendation service.

Every ``recommend``/``schedule``/``frontier`` answer used to re-run a
sweep from scratch inside a fresh process.  This package turns the
reproduction into the latency-critical scale-out workload it models
(the Subramaniam & Feng framing in PAPERS.md): a long-lived asyncio
service that precomputes and caches Pareto frontiers and deadline
staircases per configuration digest, coalesces concurrent queries into
one vectorized ``model.batched`` evaluation per tick, and sheds load at
an occupancy threshold derived from our own M/D/1 p95 model — the
scheduler schedules itself.

Layers (each its own module, composable and separately tested):

* :mod:`repro.serve.cache` — the digest-keyed LRU frontier cache with
  single-flight computation;
* :mod:`repro.serve.admission` — M/D/1-derived admission control;
* :mod:`repro.serve.batching` — the micro-batching tick queue with
  per-request deadline tracking;
* :mod:`repro.serve.service` — the asyncio HTTP server and endpoint
  handlers (stdlib only, no new runtime deps);
* :mod:`repro.serve.loadgen` — the open/closed-loop load generator and
  the ``repro-serve/1`` result envelope.

Serving contract: a cache-hit ``recommend`` answer is bit-identical to
an offline ``repro recommend --strategy exhaustive`` for the same
configuration digest (pinned by ``tests/serve/test_service.py`` and the
``serving-slo`` claim monitor).
"""

from repro.serve.admission import AdmissionController, derive_occupancy_limit
from repro.serve.batching import BatchQuery, MicroBatcher
from repro.serve.cache import FrontierCache, FrontierEntry, request_digest
from repro.serve.service import ServeConfig, ServeStats, ReproService
from repro.serve.loadgen import (
    LOADGEN_SCHEMA,
    LoadgenResult,
    loadgen_envelope,
    loadgen_scalars,
    run_loadgen,
    selfhosted_loadgen,
)

__all__ = [
    "AdmissionController",
    "derive_occupancy_limit",
    "BatchQuery",
    "MicroBatcher",
    "FrontierCache",
    "FrontierEntry",
    "request_digest",
    "ServeConfig",
    "ServeStats",
    "ReproService",
    "LOADGEN_SCHEMA",
    "LoadgenResult",
    "loadgen_envelope",
    "loadgen_scalars",
    "run_loadgen",
    "selfhosted_loadgen",
]
