"""The always-on recommendation service: asyncio HTTP, stdlib only.

``repro recommend`` pays a full process start, workload calibration and
configuration-space sweep per question.  :class:`ReproService` keeps all
of that warm in one long-lived process and answers over HTTP/1.1
(hand-rolled on ``asyncio.start_server`` — no new runtime deps):

``POST /recommend``
    ``{"workload", "deadline_s", "max_wimpy", "max_brawny", "budget_w"}``
    → the minimum-energy configuration meeting the deadline.  Answers are
    bit-identical to an offline
    :func:`repro.cluster.search.recommend_exhaustive` for the same
    configuration digest: the cached
    :class:`~repro.model.batched.DeadlineStaircase` reproduces the
    exhaustive comparator exactly (``tests/model/test_multiquery.py``),
    and responses carry the exact floats from the cached space arrays.
``POST /frontier``
    The energy-deadline Pareto frontier of the same space (budget-masked
    when a budget is given), via :func:`repro.cluster.pareto.pareto_indices`.
``POST /schedule``
    One autoscaled-day replay
    (:func:`repro.experiments.scheduling.replay_day`), summary only.
``GET /healthz`` / ``/stats`` / ``/metrics``
    Liveness, the service counters, and the Prometheus rendering of the
    process metrics registry.

Request flow: a ``recommend``/``frontier`` request digests its space
parameters (:func:`repro.serve.cache.request_digest`), and a warm digest
is answered inline — an O(log n) staircase lookup on the event loop,
never queued, never shed.  A cold digest first passes admission control
(:class:`repro.serve.admission.AdmissionController`, threshold derived
from our own M/D/1 p95 model; HTTP 503 when the compute queue is too
deep), then rides the micro-batcher
(:class:`repro.serve.batching.MicroBatcher`) under the cache's
single-flight guard, so one tick computes each distinct digest at most
once no matter how many requests ask for it concurrently.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.obs.metrics import get_registry
from repro.obs.request import (
    DEFAULT_BURN_THRESHOLD,
    DEFAULT_FAST_WINDOW_S,
    DEFAULT_FLIGHT_CAPACITY,
    DEFAULT_SAMPLE_RATE,
    DEFAULT_SLOW_WINDOW_S,
    REQUEST_ID_HEADER,
    RequestContext,
    RequestRecorder,
    classify_outcome,
)
from repro.obs.tracing import span
from repro.serve.admission import AdmissionController
from repro.serve.batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_TICK_S,
    BatchTimeout,
    MicroBatcher,
)
from repro.serve.cache import DEFAULT_CAPACITY, FrontierCache, request_digest

__all__ = [
    "DEFAULT_SLO_P95_S",
    "ReproService",
    "ServeConfig",
    "ServeStats",
]

#: Default p95 response-time SLO the admission threshold is derived from.
DEFAULT_SLO_P95_S = 0.25

#: Default per-request compute timeout (cold sweeps included).
DEFAULT_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Space-parameter schema shared by /recommend and /frontier: defaults
#: mirror the small offline search the tests pin bit-identity against.
_SPACE_DEFAULTS: Dict[str, object] = {
    "max_wimpy": 6,
    "max_brawny": 3,
    "budget_w": None,
}

_SCHEDULE_DEFAULTS: Dict[str, object] = {
    "workload": "EP",
    "policy": "ppr-greedy",
    "trace": "diurnal",
    "seed": None,
    "intervals": 24,
    "interval_s": 20.0,
    "demand": 0.5,
}


@dataclass(frozen=True)
class ServeConfig:
    """Immutable service configuration (one per :class:`ReproService`)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read it back from :attr:`ReproService.port`.
    port: int = 0
    cache_capacity: int = DEFAULT_CAPACITY
    tick_s: float = DEFAULT_TICK_S
    max_batch: int = DEFAULT_MAX_BATCH
    slo_p95_s: float = DEFAULT_SLO_P95_S
    #: Compute timeout per request (queued + batched + evaluated).
    request_timeout_s: float = DEFAULT_TIMEOUT_S
    #: Workload names whose default spaces are swept at startup, so the
    #: first real request hits a warm cache.
    precompute: Tuple[str, ...] = ()
    #: Stop serving after this many requests (None: run until stopped);
    #: the CI smoke job uses this for a bounded run.
    max_requests: Optional[int] = None
    #: Per-request tracing master switch: False skips stage recording,
    #: tail sampling and the flight ring entirely (the overhead-baseline
    #: arm of ``bench_serve``); burn-rate accounting and the request-id
    #: echo stay on either way.
    request_tracing: bool = True
    #: Routine-traffic trace sampling rate (errors, sheds and the p99
    #: tail are always kept); 1.0 traces everything (tests), 0.0 keeps
    #: only the always-keep classes.
    trace_sample: float = DEFAULT_SAMPLE_RATE
    #: Flight-ring capacity (fully-traced requests retained for dumps).
    flight_capacity: int = DEFAULT_FLIGHT_CAPACITY
    #: Flight-dump directory (None: $REPRO_FLIGHT_DIR or ``.repro/flight``).
    flight_dir: Optional[str] = None
    #: Multi-window burn-rate alerting parameters against ``slo_p95_s``.
    burn_fast_window_s: float = DEFAULT_FAST_WINDOW_S
    burn_slow_window_s: float = DEFAULT_SLOW_WINDOW_S
    burn_threshold: float = DEFAULT_BURN_THRESHOLD


@dataclass
class ServeStats:
    """Mutable per-service request counters (endpoint and status)."""

    requests: Dict[str, int] = field(default_factory=dict)
    statuses: Dict[str, int] = field(default_factory=dict)
    started: float = 0.0

    @property
    def total(self) -> int:
        """Requests routed since start (any endpoint, any outcome)."""
        return sum(self.requests.values())

    def count(self, endpoint: str, status: int) -> None:
        """Record one routed request and its response status."""
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1
        key = str(status)
        self.statuses[key] = self.statuses.get(key, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-able snapshot for the ``/stats`` endpoint."""
        return {
            "uptime_s": perf_counter() - self.started if self.started else 0.0,
            "total": self.total,
            "requests": dict(self.requests),
            "statuses": dict(self.statuses),
        }


@dataclass(frozen=True, eq=False)
class _SpacePayload:
    """One cached configuration space: arrays + staircase + frontier."""

    arrays: Any  # SpaceEvaluationArrays
    staircase: Any  # DeadlineStaircase (budget-masked when a budget applies)
    frontier: Tuple[Dict[str, object], ...]
    build_s: float
    #: Rendered answer fragments keyed by winning configuration index —
    #: the staircase has few distinct winners, so materialising
    #: ``config_at``/``label``/``str`` once per winner takes that work off
    #: the per-request hot path (the dict mutates; the payload stays frozen).
    answers: Dict[int, Dict[str, object]] = field(default_factory=dict)


def _non_config_keys() -> frozenset:
    from repro.cli import _NON_CONFIG_KEYS

    return _NON_CONFIG_KEYS


def _validated_params(
    body: Mapping[str, object], defaults: Mapping[str, object], required: Sequence[str]
) -> Dict[str, object]:
    """Merge a request body over endpoint defaults.

    Placement-only keys (:data:`repro.cli._NON_CONFIG_KEYS` — ``workers``
    and friends) are tolerated and DROPPED, so they can neither fragment
    the cache nor change the answer; any other unknown key is a 400-class
    error (a typo must not silently create a divergent cache entry).
    """
    params = dict(defaults)
    skip = _non_config_keys()
    for key, value in body.items():
        if key in skip:
            continue
        if key not in defaults and key not in required:
            raise ReproError(
                f"unknown request parameter {key!r}; "
                f"expected {sorted((*defaults, *required))}"
            )
        params[key] = value
    for key in required:
        if key not in params or params[key] is None:
            raise ReproError(f"missing required request parameter {key!r}")
    return params


def _normalize_space_params(params: Dict[str, object]) -> Dict[str, object]:
    """Canonicalise space-parameter types before digesting.

    JSON clients may send ``6`` or ``6.0``; the config digest serialises
    values literally, so types must be pinned or equal requests would
    fragment the cache.
    """
    params["workload"] = str(params["workload"])
    params["max_wimpy"] = int(params["max_wimpy"])
    params["max_brawny"] = int(params["max_brawny"])
    if params["budget_w"] is not None:
        params["budget_w"] = float(params["budget_w"])
    return params


def _normalize_schedule_params(params: Dict[str, object]) -> Dict[str, object]:
    """Canonicalise schedule-replay parameter types before digesting."""
    params["workload"] = str(params["workload"])
    params["policy"] = str(params["policy"])
    params["trace"] = str(params["trace"])
    if params["seed"] is not None:
        params["seed"] = int(params["seed"])
    params["intervals"] = int(params["intervals"])
    params["interval_s"] = float(params["interval_s"])
    params["demand"] = float(params["demand"])
    return params


def _build_space_payload(params: Mapping[str, object]) -> _SpacePayload:
    """Evaluate one space and precompute its answer machinery.

    Runs on the batcher's compute thread: ONE vectorized
    :func:`evaluate_space_arrays` pass over the whole configuration
    space, one staircase build, one Pareto pass — everything later
    requests against this digest will ever need.
    """
    import repro
    from repro.cluster.pareto import pareto_indices
    from repro.model.batched import deadline_staircase, evaluate_space_arrays

    t0 = perf_counter()
    workload = repro.workload(str(params["workload"]))
    spaces = [
        repro.TypeSpace(repro.get_node_spec("A9"), n_max=int(params["max_wimpy"])),
        repro.TypeSpace(repro.get_node_spec("K10"), n_max=int(params["max_brawny"])),
    ]
    with span("serve.build_space", workload=workload.name):
        arrays = evaluate_space_arrays(workload, spaces)
        budget_w = params.get("budget_w")
        if budget_w is not None:
            budget = repro.PowerBudget(float(budget_w))
            mask = budget.fits_mask(
                arrays.nameplate_w,
                arrays.counts.get("A9", np.zeros(arrays.n_configs, dtype=np.int64)),
            )
            candidates = np.flatnonzero(mask)
        else:
            mask = None
            candidates = np.arange(arrays.n_configs, dtype=np.int64)
        staircase = deadline_staircase(arrays, mask)
        frontier: List[Dict[str, object]] = []
        if candidates.size:
            keep = candidates[
                pareto_indices(arrays.tp_s[candidates], arrays.energy_j[candidates])
            ]
            for idx in keep:
                config = arrays.config_at(int(idx))
                frontier.append(
                    {
                        "mix": config.label(),
                        "operating_point": str(config),
                        "tp_s": float(arrays.tp_s[idx]),
                        "energy_j": float(arrays.energy_j[idx]),
                        "peak_power_w": float(arrays.peak_power_w[idx]),
                    }
                )
    return _SpacePayload(
        arrays=arrays,
        staircase=staircase,
        frontier=tuple(frontier),
        build_s=perf_counter() - t0,
    )


def _run_schedule(params: Mapping[str, object]) -> Dict[str, object]:
    """One autoscaled-day replay as a compact JSON document.

    The full per-interval telemetry stream is dropped (this is a serving
    response, not an export — ``repro schedule --json`` remains the
    firehose); everything else matches ``schedule_result_json``.
    """
    from repro.experiments.scheduling import (
        replay_day,
        replay_scalars,
        schedule_result_json,
    )
    from repro.util.rng import DEFAULT_SEED

    seed = params["seed"]
    seed = DEFAULT_SEED if seed is None else int(seed)
    result, oracle = replay_day(
        str(params["workload"]),
        str(params["policy"]),
        trace_kind=str(params["trace"]),
        seed=seed,
        n_intervals=int(params["intervals"]),
        interval_s=float(params["interval_s"]),
        demand=float(params["demand"]),
    )
    doc = schedule_result_json(result, oracle, seed=seed)
    doc.pop("telemetry", None)
    doc.pop("node_stats", None)
    doc["scalars"] = replay_scalars(result, oracle)
    return doc


class ReproService:
    """The asyncio HTTP service tying cache, batcher and admission together.

    Lifecycle::

        service = ReproService(ServeConfig(precompute=("EP",)))
        await service.start()          # batcher + precompute + listener
        ...                            # service.port is now bound
        await service.run_until_stopped(duration_s=60)
        await service.close()
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.cache = FrontierCache(self.config.cache_capacity)
        self.admission = AdmissionController(self.config.slo_p95_s)
        self.batcher = MicroBatcher(
            self._compute_batch,
            tick_s=self.config.tick_s,
            max_batch=self.config.max_batch,
        )
        self.stats_counters = ServeStats()
        self.recorder = RequestRecorder(
            slo_p95_s=self.config.slo_p95_s,
            sample_rate=self.config.trace_sample,
            enabled=self.config.request_tracing,
            flight_capacity=self.config.flight_capacity,
            flight_dir=self.config.flight_dir,
            fast_window_s=self.config.burn_fast_window_s,
            slow_window_s=self.config.burn_slow_window_s,
            burn_threshold=self.config.burn_threshold,
            state_provider=self.stats,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Start the batcher, warm the precompute set, bind the listener."""
        if self._server is not None:
            raise ReproError("service already started")
        self._stop_event = asyncio.Event()
        self.batcher.start()
        for name in self.config.precompute:
            params = dict(_SPACE_DEFAULTS)
            params["workload"] = name
            await self.cache.get_or_compute(
                request_digest(params), params, lambda p=params: self._compute_entry("space", p)
            )
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port
        )
        self.stats_counters.started = perf_counter()

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ephemeral port 0)."""
        if self._server is None or not self._server.sockets:
            raise ReproError("service is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def host(self) -> str:
        """The configured bind host."""
        return self.config.host

    def request_stop(self) -> None:
        """Ask :meth:`run_until_stopped` to return (loop-thread only)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def run_until_stopped(self, duration_s: Optional[float] = None) -> None:
        """Serve until :meth:`request_stop`, ``max_requests``, or a timeout."""
        if self._stop_event is None:
            raise ReproError("service is not started")
        if duration_s is None:
            await self._stop_event.wait()
            return
        try:
            await asyncio.wait_for(self._stop_event.wait(), timeout=duration_s)
        except asyncio.TimeoutError:
            pass

    async def close(self) -> None:
        """Stop listening and tear the batcher down.

        Dumps the flight ring first when a burn alert is still active —
        the operator stopping a misbehaving service is exactly when the
        post-mortem must not be lost.
        """
        self.recorder.on_shutdown()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.close()
        if self._stop_event is not None:
            self._stop_event.set()

    # -- introspection -----------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The full service state document (the ``/stats`` body)."""
        return {
            "service": self.stats_counters.to_dict(),
            "cache": self.cache.stats(),
            "admission": self.admission.stats(),
            "batching": self.batcher.stats(),
            "slo": self.recorder.slo_stats(),
            "tracing": self.recorder.tracing_stats(),
        }

    def summary_scalars(self) -> Dict[str, float]:
        """Flat scalars for the one ``cli/serve`` shutdown ledger record."""
        cache = self.cache.stats()
        admission = self.admission.stats()
        batching = self.batcher.stats()
        return {
            "requests_total": float(self.stats_counters.total),
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
            "cache_hit_fraction": cache["hit_fraction"],
            "cache_evictions": cache["evictions"],
            "shed": admission["shed"],
            "admission_depth_limit": admission["depth_limit"],
            "batches": batching["batches"],
            "mean_batch_size": batching["mean_batch_size"],
            **self.recorder.summary_scalars(),
        }

    # -- compute path ------------------------------------------------------
    def _compute_batch(self, payloads: Sequence[Any]) -> List[Any]:
        """The micro-batcher's compute callback (runs on the worker thread).

        One drained tick's payloads, computed back to back on one thread;
        a per-payload failure becomes that query's exception without
        poisoning the rest of the batch.
        """
        results: List[Any] = []
        for payload in payloads:
            kind, params = payload
            t0 = perf_counter()
            try:
                if kind == "space":
                    obj: Any = _build_space_payload(params)
                elif kind == "schedule":
                    obj = _run_schedule(params)
                else:
                    raise ReproError(f"unknown compute payload kind {kind!r}")
            except Exception as exc:  # noqa: BLE001 - delivered per-query
                results.append(exc)
                continue
            results.append({"payload": obj, "elapsed_s": perf_counter() - t0})
        return results

    async def _compute_entry(
        self,
        kind: str,
        params: Mapping[str, object],
        ctx: Optional[RequestContext] = None,
    ) -> Any:
        """Submit one cold compute through the batcher; feed admission.

        The leader request's context rides the batch query: the drain
        loop stamps ``batch.queue`` (enqueue to drain) and this return
        path stamps ``batch.compute`` from the worker's measured elapsed
        time, both nesting under the request's open ``cache`` stage.
        """
        out = await self.batcher.submit(
            (kind, dict(params)), timeout_s=self.config.request_timeout_s, ctx=ctx
        )
        self.admission.observe(out["elapsed_s"])
        if ctx is not None:
            ctx.add_stage(
                "batch.compute",
                start_s=perf_counter() - out["elapsed_s"],
                wall_s=out["elapsed_s"],
                kind=kind,
            )
        return out["payload"]

    def _admit_or_shed(self, digest: str, ctx: RequestContext) -> None:
        """Admission check for one digest, recorded on the request trace."""
        with ctx.stage("admission") as st:
            if digest in self.cache:
                ctx.admitted = True
                st.set(resident=True, admitted=True)
                return
            decision = self.admission.decide(self.batcher.depth)
            ctx.admitted = decision.admitted
            st.set(
                resident=False,
                admitted=decision.admitted,
                depth=decision.depth,
                depth_limit=decision.depth_limit,
            )
            if not decision.admitted:
                raise _Shed(digest)

    async def _space_entry(self, params: Dict[str, object], ctx: RequestContext):
        """The cached space entry for one request, with admission on misses.

        Returns ``(entry, was_hit)``; raises ``_Shed`` when admission
        rejects a cold compute.
        """
        digest = request_digest(params)
        ctx.digest = digest
        self._admit_or_shed(digest, ctx)
        with ctx.stage("cache") as st:
            entry, was_hit = await self.cache.get_or_compute(
                digest,
                params,
                lambda: self._compute_entry("space", params, ctx),
                ctx=ctx,
            )
            st.set(hit=was_hit)
        ctx.cache_hit = was_hit
        return digest, (entry, was_hit)

    # -- endpoint handlers -------------------------------------------------
    async def _handle_recommend(
        self, body: Mapping[str, object], ctx: RequestContext
    ) -> Dict[str, object]:
        with ctx.stage("validate"):
            params = _validated_params(
                body, _SPACE_DEFAULTS, ("workload", "deadline_s")
            )
            deadline_s = float(params.pop("deadline_s"))
            params = _normalize_space_params(params)
            if deadline_s <= 0:
                raise ReproError(f"deadline_s must be positive, got {deadline_s}")
        digest, (entry, was_hit) = await self._space_entry(params, ctx)
        payload: _SpacePayload = entry.payload
        with ctx.stage("lookup"):
            idx = payload.staircase.best_index(deadline_s)
            doc: Dict[str, object] = {
                "endpoint": "recommend",
                "workload": params["workload"],
                "deadline_s": deadline_s,
                "digest": digest,
                "cache_hit": was_hit,
                "evaluated_configs": payload.arrays.n_configs,
                "strategy": "exhaustive",
            }
            if idx < 0:
                doc["feasible"] = False
                return doc
            fragment = payload.answers.get(idx)
            if fragment is None:
                arrays = payload.arrays
                config = arrays.config_at(idx)
                fragment = {
                    "feasible": True,
                    "mix": config.label(),
                    "operating_point": str(config),
                    "tp_s": float(arrays.tp_s[idx]),
                    "energy_j": float(arrays.energy_j[idx]),
                    "peak_power_w": float(arrays.peak_power_w[idx]),
                }
                payload.answers[idx] = fragment
            doc.update(fragment)
        return doc

    async def _handle_frontier(
        self, body: Mapping[str, object], ctx: RequestContext
    ) -> Dict[str, object]:
        with ctx.stage("validate"):
            params = _normalize_space_params(
                _validated_params(body, _SPACE_DEFAULTS, ("workload",))
            )
        digest, (entry, was_hit) = await self._space_entry(params, ctx)
        payload: _SpacePayload = entry.payload
        with ctx.stage("lookup"):
            doc = {
                "endpoint": "frontier",
                "workload": params["workload"],
                "digest": digest,
                "cache_hit": was_hit,
                "evaluated_configs": payload.arrays.n_configs,
                "points": list(payload.frontier),
            }
        return doc

    async def _handle_schedule(
        self, body: Mapping[str, object], ctx: RequestContext
    ) -> Dict[str, object]:
        with ctx.stage("validate"):
            params = _normalize_schedule_params(
                _validated_params(body, _SCHEDULE_DEFAULTS, ())
            )
        digest = request_digest(params)
        ctx.digest = digest
        self._admit_or_shed(digest, ctx)
        with ctx.stage("cache") as st:
            entry, was_hit = await self.cache.get_or_compute(
                digest,
                params,
                lambda: self._compute_entry("schedule", params, ctx),
                ctx=ctx,
            )
            st.set(hit=was_hit)
        ctx.cache_hit = was_hit
        with ctx.stage("lookup"):
            doc = dict(entry.payload)
            doc.update(endpoint="schedule", digest=digest, cache_hit=was_hit)
        return doc

    # -- HTTP plumbing -----------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes, ctx: RequestContext
    ) -> Tuple[int, str, bytes]:
        """Dispatch one parsed request; returns (status, content-type, body)."""
        if method == "GET":
            if path == "/healthz":
                return 200, "application/json", _json_bytes(
                    {"status": "ok", "requests": self.stats_counters.total}
                )
            if path == "/stats":
                return 200, "application/json", _json_bytes(self.stats())
            if path == "/metrics":
                return 200, "text/plain; version=0.0.4", get_registry().to_prometheus().encode("utf-8")
            return 404, "application/json", _json_bytes({"error": f"no such path {path}"})
        if method != "POST":
            return 405, "application/json", _json_bytes({"error": f"method {method} not allowed"})
        handler = {
            "/recommend": self._handle_recommend,
            "/frontier": self._handle_frontier,
            "/schedule": self._handle_schedule,
        }.get(path)
        if handler is None:
            return 404, "application/json", _json_bytes({"error": f"no such path {path}"})
        try:
            with ctx.stage("parse"):
                parsed = json.loads(body.decode("utf-8")) if body else {}
                if not isinstance(parsed, dict):
                    raise ReproError("request body must be a JSON object")
            doc = await handler(parsed, ctx)
            with ctx.stage("render"):
                payload = _json_bytes(doc)
            return 200, "application/json", payload
        except _Shed as shed:
            limit = self.admission.limit
            return 503, "application/json", _json_bytes(
                {
                    "error": "shed",
                    "digest": shed.digest,
                    "depth": self.batcher.depth,
                    "depth_limit": limit.depth,
                    "retry_after_s": limit.service_time_s,
                }
            )
        except BatchTimeout as exc:
            return 504, "application/json", _json_bytes({"error": str(exc)})
        except (ReproError, ValueError, TypeError, json.JSONDecodeError) as exc:
            return 400, "application/json", _json_bytes({"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - the connection must survive
            return 500, "application/json", _json_bytes(
                {"error": f"{type(exc).__name__}: {exc}"}
            )

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One keep-alive HTTP/1.1 connection: parse, route, respond, repeat."""
        registry = get_registry()
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    await _respond(writer, 400, "application/json",
                                   _json_bytes({"error": "malformed request line"}),
                                   close=True)
                    break
                method, target, _version = parts
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                body = await reader.readexactly(length) if length else b""
                path = target.split("?", 1)[0]
                ctx = self.recorder.start_request(
                    path, request_id=headers.get(REQUEST_ID_HEADER)
                )
                t0 = perf_counter()
                status, ctype, payload = await self._route(method, path, body, ctx)
                latency = perf_counter() - t0
                self.stats_counters.count(path, status)
                if registry.enabled:
                    registry.counter(
                        "repro_serve_requests_total",
                        help="HTTP requests routed by the serve endpoint",
                    ).inc()
                    registry.histogram(
                        "repro_serve_request_latency_s",
                        buckets=(0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5),
                        labels={
                            "endpoint": path,
                            "outcome": classify_outcome(status),
                        },
                        help="Server-side request latency (route to response)",
                    ).observe(latency)
                self.recorder.finish_request(ctx, status, latency)
                close = headers.get("connection", "").lower() == "close"
                await _respond(
                    writer,
                    status,
                    ctype,
                    payload,
                    close=close,
                    request_id=ctx.request_id,
                )
                if self.config.max_requests is not None and (
                    self.stats_counters.total >= self.config.max_requests
                ):
                    self.request_stop()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Service shutdown while parked on an idle keep-alive
            # connection; ending the handler quietly is the clean exit.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass


class _Shed(Exception):
    """Internal control flow: the request was rejected by admission."""

    def __init__(self, digest: str) -> None:
        super().__init__(digest)
        self.digest = digest


def _json_bytes(doc: Mapping[str, object]) -> bytes:
    return json.dumps(doc).encode("utf-8")


async def _respond(
    writer: asyncio.StreamWriter,
    status: int,
    ctype: str,
    body: bytes,
    *,
    close: bool = False,
    request_id: Optional[str] = None,
) -> None:
    request_id_line = (
        f"X-Repro-Request-Id: {request_id}\r\n" if request_id else ""
    )
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {ctype}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{request_id_line}"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
