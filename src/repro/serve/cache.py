"""Digest-keyed frontier cache: LRU-bounded, single-flight, invalidated by key.

The cache maps one *configuration digest* — the same
:func:`repro.obs.ledger.config_digest` the run ledger stamps on every
record — to the precomputed answer machinery for that configuration: the
evaluated space arrays, the deadline staircase, and the Pareto frontier.
Because the key is a digest of the *configuration* parameters only,
invalidation is free: mutate any workload/budget parameter and the digest
changes, so the next request misses and recomputes; stale entries age out
under the LRU bound.

Placement-only knobs are excluded before digesting.
:func:`request_digest` strips :data:`repro.cli._NON_CONFIG_KEYS` — the
exact frozenset the CLI's ledger records use — so a ``workers`` (or
``trace_out``/``ledger_dir``...) field in a request body can never
fragment the cache into per-placement copies of the same frontier
(regression-pinned in ``tests/serve/test_cache.py``).

Single-flight: concurrent requests for the same cold key compute the
entry ONCE.  The first asks the factory to compute; followers await the
same in-flight future.  A failed compute propagates to every waiter and
leaves no entry behind, so the next request retries cleanly.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.obs.ledger import config_digest
from repro.obs.metrics import get_registry

__all__ = ["FrontierCache", "FrontierEntry", "request_digest"]

#: Default LRU bound: entries are a few MB each (space arrays + staircase),
#: so a few dozen keeps the working set of every paper workload x space
#: shape resident without unbounded growth.
DEFAULT_CAPACITY = 32


def request_digest(params: Mapping[str, object]) -> str:
    """The configuration digest of one request's parameters.

    Reuses the CLI's ledger conventions end to end: placement-only keys
    (:data:`repro.cli._NON_CONFIG_KEYS` — ``workers``, output paths,
    ledger plumbing) are stripped first, then the rest is digested with
    :func:`repro.obs.ledger.config_digest`.  Two requests that differ
    only in where/how they execute therefore share one cache entry, and
    a serve-side digest equals the ledger digest of the equivalent
    offline CLI run.
    """
    from repro.cli import _NON_CONFIG_KEYS

    cleaned: Dict[str, object] = {}
    for key, value in params.items():
        if key in _NON_CONFIG_KEYS:
            continue
        if isinstance(value, Mapping):
            cleaned[key] = {str(k): v for k, v in sorted(value.items())}
        else:
            cleaned[key] = value
    try:
        return _digest_of_items(tuple(sorted(cleaned.items())))
    except TypeError:  # an unhashable value (nested mapping) — full path
        return config_digest(cleaned)


@lru_cache(maxsize=4096)
def _digest_of_items(items: Tuple[Tuple[str, object], ...]) -> str:
    """Memoized digest over hashable param items (the per-request hot path:
    hot digests repeat for every request against a warm cache entry)."""
    return config_digest(dict(items))


@dataclass(frozen=True)
class FrontierEntry:
    """One cached configuration's answer machinery.

    ``payload`` is endpoint-specific (the service stores evaluated space
    arrays + staircase + frontier for ``recommend``/``frontier`` keys and
    a result document for ``schedule`` keys); the cache itself only needs
    the digest and the params that produced it (kept for introspection
    and the ``/stats`` endpoint).
    """

    digest: str
    params: Mapping[str, object]
    payload: Any


class FrontierCache:
    """An LRU-bounded, single-flight cache of :class:`FrontierEntry`.

    Synchronous ``get``/``put`` serve tests and warm paths;
    :meth:`get_or_compute` is the async single-flight entry the service
    uses.  All bookkeeping is event-loop-confined (the service is a
    single-loop asyncio program), so no locking is needed beyond the
    in-flight future map.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, FrontierEntry]" = OrderedDict()
        self._inflight: Dict[str, "asyncio.Future[FrontierEntry]"] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.computes = 0

    # -- sync surface ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def keys(self) -> List[str]:
        """Cached digests, least- to most-recently used."""
        return list(self._entries)

    def get(self, digest: str) -> Optional[FrontierEntry]:
        """The cached entry (refreshing its recency), or None on a miss.

        Counts a hit or miss — call only on real request paths.
        """
        entry = self._entries.get(digest)
        registry = get_registry()
        if entry is None:
            self.misses += 1
            if registry.enabled:
                registry.counter(
                    "repro_serve_cache_misses_total",
                    help="Frontier-cache lookups that required a compute",
                ).inc()
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        if registry.enabled:
            registry.counter(
                "repro_serve_cache_hits_total",
                help="Frontier-cache lookups answered from memory",
            ).inc()
        return entry

    def put(self, entry: FrontierEntry) -> None:
        """Insert (or refresh) one entry, evicting the LRU tail if full."""
        self._entries[entry.digest] = entry
        self._entries.move_to_end(entry.digest)
        registry = get_registry()
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            if registry.enabled:
                registry.counter(
                    "repro_serve_cache_evictions_total",
                    help="Frontier-cache entries evicted under the LRU bound",
                ).inc()
        if registry.enabled:
            registry.gauge(
                "repro_serve_cache_entries",
                help="Frontier-cache entries currently resident",
            ).set(len(self._entries))

    def invalidate(self, digest: str) -> bool:
        """Drop one entry; returns whether it was present."""
        return self._entries.pop(digest, None) is not None

    def clear(self) -> None:
        """Drop every entry (counters keep their totals)."""
        self._entries.clear()

    # -- async single-flight ----------------------------------------------
    async def get_or_compute(
        self,
        digest: str,
        params: Mapping[str, object],
        factory: Callable[[], Any],
        ctx: Optional[Any] = None,
    ) -> Tuple[FrontierEntry, bool]:
        """The entry for ``digest``, computing it at most once.

        Returns ``(entry, was_hit)``.  ``factory`` runs in the calling
        task (the service wraps it in its compute executor); concurrent
        callers for the same cold digest await the first caller's
        in-flight future instead of recomputing (single-flight, pinned in
        ``tests/serve/test_cache.py``).  A factory failure propagates to
        every waiter and caches nothing.

        ``ctx`` (a :class:`repro.obs.request.RequestContext`) attributes
        the coalesced wait to the request's span tree, so a flight dump
        distinguishes "waited on another request's compute" from
        "computed it myself".
        """
        entry = self.get(digest)
        if entry is not None:
            return entry, True
        pending = self._inflight.get(digest)
        if pending is not None:
            # Coalesced onto the in-flight compute: not a hit (the answer
            # was not resident), but not a second compute either.
            if ctx is not None:
                with ctx.stage("cache.wait", coalesced=True):
                    return await asyncio.shield(pending), False
            return await asyncio.shield(pending), False
        future: "asyncio.Future[FrontierEntry]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[digest] = future
        try:
            payload = factory()
            if asyncio.iscoroutine(payload):
                payload = await payload
            entry = FrontierEntry(digest=digest, params=dict(params), payload=payload)
            self.computes += 1
            self.put(entry)
            future.set_result(entry)
            return entry, False
        except BaseException as exc:
            future.set_exception(exc)
            # The failure is delivered through the future to any waiter;
            # if nobody else awaited it, mark it retrieved so the loop
            # does not log a never-consumed exception.
            if not future.cancelled():
                future.exception()
            raise
        finally:
            self._inflight.pop(digest, None)

    # -- introspection -----------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counters plus occupancy (for ``/stats``)."""
        total = self.hits + self.misses
        return {
            "entries": float(len(self._entries)),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "computes": float(self.computes),
            "hit_fraction": (self.hits / total) if total else 0.0,
        }
