"""Closed/open-loop load generator for the serve endpoint.

The serving claim ("batched serving sustains the reference load inside
the p95 SLO, answering exactly what the offline sweep would") needs a
driver that measures the service the way the paper's M/D/1 analysis
measures a cluster: arrivals with a controlled process, client-side
response-time percentiles, sheds counted separately from completions.

Two modes:

* **closed** — ``clients`` concurrent workers, each holding one
  keep-alive connection and firing its next request the moment the
  previous answer lands (think-time zero).  Throughput is
  demand-limited; this is the mode the benchmark and the serving-SLO
  monitor use because it is robust to machine speed.
* **open** — request start times drawn from a
  :mod:`repro.queueing.processes` arrival process (``poisson``,
  ``mmpp``, ``flash-crowd``, ``diurnal``) at a target rate, dispatched
  regardless of completions — the mode that can actually overload the
  service and exercise admission control.

The query plan is seeded (``RngRegistry(seed).stream("serve/loadgen")``)
and replayable: a priming pass fetches each workload's frontier (cold
sweeps, excluded from the measured window), then deadlines are drawn
log-uniform across each frontier's execution-time range so queries span
infeasible through trivially-feasible.

Results land in a ``repro-serve/1`` envelope
(:func:`loadgen_envelope`) which the CLI records to the run ledger as an
``experiment/serve-loadgen`` record, mirroring the robustness command.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.util.rng import DEFAULT_SEED, RngRegistry

__all__ = [
    "LOADGEN_SCHEMA",
    "LoadgenResult",
    "loadgen_envelope",
    "run_loadgen",
    "selfhosted_loadgen",
]

#: Version tag of the load-generator result envelope.
LOADGEN_SCHEMA = "repro-serve/1"

#: Deadline draw range relative to a workload's frontier execution times:
#: log-uniform over [lo_mult * tp_min, hi_mult * tp_max], so some draws are
#: infeasible (below tp_min) and some trivially feasible.
_DEADLINE_LO_MULT = 0.5
_DEADLINE_HI_MULT = 2.0


@dataclass(frozen=True)
class LoadgenResult:
    """One load-generation run's client-side measurements."""

    mode: str
    attempted: int
    completed: int
    shed: int
    errors: int
    infeasible: int
    wall_s: float
    latencies_s: Tuple[float, ...]
    statuses: Mapping[str, int]
    seed: int
    #: The service's final ``/stats`` document (None when unreachable).
    server_stats: Optional[Mapping[str, object]] = None
    #: ``(request_body, response_doc)`` pairs for completed requests, kept
    #: only when ``collect_responses=True`` (the serving-SLO monitor's
    #: bit-identity audit); empty otherwise.
    responses: Tuple[Tuple[Mapping[str, object], Mapping[str, object]], ...] = ()
    #: Per-request ``(request_id, status, latency_s)`` records, every
    #: outcome included (status 0: transport error) — the client-side
    #: half of a flight-recorder join.
    request_records: Tuple[Tuple[str, int, float], ...] = ()
    #: Responses whose ``X-Repro-Request-Id`` echo matched the id sent.
    id_echoes: int = 0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second over the measured window."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentile_s(self, q: float) -> float:
        """Client-side latency percentile over completed requests."""
        if not self.latencies_s:
            return math.nan
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def p50_s(self) -> float:
        """Median client-side latency."""
        return self.latency_percentile_s(50.0)

    @property
    def p95_s(self) -> float:
        """95th-percentile client-side latency (the SLO quantity)."""
        return self.latency_percentile_s(95.0)

    @property
    def p99_s(self) -> float:
        """99th-percentile client-side latency."""
        return self.latency_percentile_s(99.0)

    @property
    def mean_s(self) -> float:
        """Mean client-side latency over completed requests."""
        if not self.latencies_s:
            return math.nan
        return float(np.mean(np.asarray(self.latencies_s)))


def loadgen_scalars(result: LoadgenResult) -> Dict[str, float]:
    """Flat ledger scalars of one load-generation run."""
    return {
        "attempted": float(result.attempted),
        "completed": float(result.completed),
        "shed": float(result.shed),
        "errors": float(result.errors),
        "throughput_rps": result.throughput_rps,
        "p50_latency_s": result.p50_s,
        "p95_latency_s": result.p95_s,
        "p99_latency_s": result.p99_s,
    }


def _request_id_section(result: LoadgenResult) -> Dict[str, object]:
    """The envelope's flight-recorder join keys: ids of the interesting
    requests (sheds, errors, the slowest completions), bounded so a
    10^5-request run cannot bloat the ledger record."""
    records = result.request_records
    answered = [r for r in records if r[1] > 0]
    slowest = sorted(
        (r for r in records if r[1] == 200), key=lambda r: -r[2]
    )[:5]
    return {
        "echoed_fraction": (
            result.id_echoes / len(answered) if answered else 0.0
        ),
        "shed": [r[0] for r in records if r[1] == 503][:32],
        "errors": [r[0] for r in records if r[1] not in (200, 503)][:32],
        "slowest": [
            {"request_id": r[0], "status": r[1], "latency_s": r[2]}
            for r in slowest
        ],
    }


def loadgen_envelope(
    result: LoadgenResult, params: Mapping[str, object]
) -> Dict[str, object]:
    """The ``repro-serve/1`` result envelope around one run."""
    return {
        "schema": LOADGEN_SCHEMA,
        "mode": result.mode,
        "params": dict(params),
        "seed": result.seed,
        "requests": {
            "attempted": result.attempted,
            "completed": result.completed,
            "shed": result.shed,
            "errors": result.errors,
            "infeasible": result.infeasible,
        },
        "latency_s": {
            "p50": result.p50_s,
            "p95": result.p95_s,
            "p99": result.p99_s,
            "mean": result.mean_s,
        },
        "throughput_rps": result.throughput_rps,
        "wall_s": result.wall_s,
        "statuses": dict(result.statuses),
        "request_ids": _request_id_section(result),
        "server": dict(result.server_stats) if result.server_stats else None,
    }


class _HttpClient:
    """A minimal keep-alive HTTP/1.1 client over asyncio streams."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: Response headers of the most recent request (lower-cased keys) —
        #: how callers read the server's ``X-Repro-Request-Id`` echo.
        self.last_headers: Dict[str, str] = {}

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        doc: Optional[Mapping[str, object]] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, Dict[str, object]]:
        """One request/response round trip; reconnects a dropped connection."""
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = json.dumps(doc).encode("utf-8") if doc is not None else b""
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "Connection: keep-alive\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2:
            raise ReproError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        resp_headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            resp_headers[key.strip().lower()] = value.strip()
        self.last_headers = resp_headers
        length = int(resp_headers.get("content-length", "0") or "0")
        payload = await self._reader.readexactly(length) if length else b""
        ctype = resp_headers.get("content-type", "")
        if payload and ctype.startswith("application/json"):
            return status, json.loads(payload.decode("utf-8"))
        return status, {"raw": payload.decode("utf-8", "replace")}


@dataclass
class _Tally:
    """Mutable request-outcome accumulator shared by all workers."""

    completed: int = 0
    shed: int = 0
    errors: int = 0
    infeasible: int = 0
    id_echoes: int = 0
    keep_responses: bool = False
    latencies: List[float] = None  # type: ignore[assignment]
    statuses: Dict[str, int] = None  # type: ignore[assignment]
    responses: List[Tuple[Mapping[str, object], Mapping[str, object]]] = None  # type: ignore[assignment]
    records: List[Tuple[str, int, float]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.latencies = []
        self.statuses = {}
        self.responses = []
        self.records = []

    def record(
        self,
        status: int,
        body: Mapping[str, object],
        doc: Mapping[str, object],
        latency_s: float,
        *,
        request_id: str = "",
        echoed: bool = False,
    ) -> None:
        self.statuses[str(status)] = self.statuses.get(str(status), 0) + 1
        self.records.append((request_id, status, latency_s))
        if echoed:
            self.id_echoes += 1
        if status == 200:
            self.completed += 1
            self.latencies.append(latency_s)
            if doc.get("feasible") is False:
                self.infeasible += 1
            if self.keep_responses:
                self.responses.append((dict(body), doc))
        elif status == 503:
            self.shed += 1
        else:
            self.errors += 1

    def error(self, request_id: str = "", latency_s: float = 0.0) -> None:
        self.errors += 1
        self.records.append((request_id, 0, latency_s))


def _build_plan(
    rng: np.random.Generator,
    n: int,
    workloads: Sequence[str],
    tp_ranges: Mapping[str, Tuple[float, float]],
    space: Mapping[str, object],
    cold_fraction: float = 0.0,
) -> List[Dict[str, object]]:
    """The seeded query plan: one /recommend body per request.

    ``cold_fraction`` is the overload injector: that fraction of requests
    gets a unique (non-binding, enormous) ``budget_w``, so each carries a
    digest the cache has never seen and forces a full cold sweep — the
    only way warmed traffic can be driven past the admission limit.  The
    extra draws happen *after* the base plan, so ``cold_fraction=0``
    reproduces the historical plan bit-for-bit for a given seed.
    """
    plan: List[Dict[str, object]] = []
    for _ in range(n):
        name = workloads[int(rng.integers(len(workloads)))]
        lo, hi = tp_ranges[name]
        log_lo = math.log(lo * _DEADLINE_LO_MULT)
        log_hi = math.log(hi * _DEADLINE_HI_MULT)
        deadline = math.exp(float(rng.uniform(log_lo, log_hi)))
        body: Dict[str, object] = {"workload": name, "deadline_s": deadline}
        body.update(space)
        plan.append(body)
    if cold_fraction > 0:
        draws = rng.random(n)
        for i, body in enumerate(plan):
            if draws[i] < cold_fraction:
                body["budget_w"] = 1e9 + float(i)
    return plan


async def run_loadgen(
    host: str,
    port: int,
    *,
    mode: str = "closed",
    clients: int = 8,
    total_requests: int = 200,
    arrival: str = "poisson",
    rate_rps: float = 200.0,
    workloads: Sequence[str] = ("EP",),
    space: Optional[Mapping[str, object]] = None,
    seed: int = DEFAULT_SEED,
    timeout_s: float = 30.0,
    collect_responses: bool = False,
    cold_fraction: float = 0.0,
) -> LoadgenResult:
    """Drive one seeded load-generation run against a live service.

    A priming pass (one ``/frontier`` per workload, outside the measured
    window) warms each workload's cache entry and reads its frontier
    execution-time range for the deadline draws; the measured window then
    issues ``total_requests`` ``/recommend`` queries in the chosen mode.

    Every request carries a deterministic client-generated id in the
    ``X-Repro-Request-Id`` header (``lg-<seed hex>-<index>``), which the
    server echoes and stamps on its flight-recorder traces — so a dump
    can be joined back to the exact client-side record.
    ``cold_fraction > 0`` injects never-before-seen digests (forced cold
    sweeps) to drive the service past its admission limit.
    """
    if mode not in ("closed", "open"):
        raise ReproError(f"mode must be 'closed' or 'open', got {mode!r}")
    if clients < 1:
        raise ReproError(f"clients must be >= 1, got {clients}")
    if total_requests < 1:
        raise ReproError(f"total_requests must be >= 1, got {total_requests}")
    if not workloads:
        raise ReproError("at least one workload is required")
    if not 0.0 <= cold_fraction <= 1.0:
        raise ReproError(
            f"cold_fraction must be in [0, 1], got {cold_fraction}"
        )
    space = dict(space or {})
    rng = RngRegistry(seed).stream("serve/loadgen")

    # Priming pass: warm each workload's space entry and learn its
    # frontier tp range (cold sweeps — excluded from the measured window).
    primer = _HttpClient(host, port)
    await primer.connect()
    tp_ranges: Dict[str, Tuple[float, float]] = {}
    try:
        for name in workloads:
            status, doc = await asyncio.wait_for(
                primer.request("POST", "/frontier", {"workload": name, **space}),
                timeout=timeout_s,
            )
            if status != 200:
                raise ReproError(
                    f"priming /frontier for {name!r} failed "
                    f"({status}): {doc.get('error', doc)}"
                )
            tps = [float(p["tp_s"]) for p in doc.get("points", [])]
            if not tps:
                raise ReproError(f"workload {name!r} has an empty frontier")
            tp_ranges[name] = (min(tps), max(tps))
    finally:
        await primer.aclose()

    plan = _build_plan(
        rng, total_requests, list(workloads), tp_ranges, space, cold_fraction
    )
    tally = _Tally(keep_responses=collect_responses)
    id_prefix = f"lg-{seed & 0xFFFFFFFF:08x}"

    async def fire(client: _HttpClient, index: int, body: Mapping[str, object]) -> None:
        rid = f"{id_prefix}-{index:06d}"
        t0 = perf_counter()
        try:
            status, doc = await asyncio.wait_for(
                client.request(
                    "POST",
                    "/recommend",
                    body,
                    headers={"X-Repro-Request-Id": rid},
                ),
                timeout=timeout_s,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError, ReproError):
            tally.error(rid, perf_counter() - t0)
            await client.aclose()
            return
        tally.record(
            status,
            body,
            doc,
            perf_counter() - t0,
            request_id=rid,
            echoed=client.last_headers.get("x-repro-request-id") == rid,
        )

    t_start = perf_counter()
    if mode == "closed":
        cursor = {"next": 0}

        async def worker() -> None:
            client = _HttpClient(host, port)
            await client.connect()
            try:
                while True:
                    i = cursor["next"]
                    if i >= len(plan):
                        return
                    cursor["next"] = i + 1
                    await fire(client, i, plan[i])
            finally:
                await client.aclose()

        await asyncio.gather(*(worker() for _ in range(clients)))
    else:
        from repro.queueing.processes import make_arrivals

        times = make_arrivals(arrival, rate_rps).sample_arrivals(
            rng, total_requests
        )
        pool: "asyncio.Queue[_HttpClient]" = asyncio.Queue()
        for _ in range(clients):
            client = _HttpClient(host, port)
            await client.connect()
            pool.put_nowait(client)

        async def dispatch(
            at_s: float, index: int, body: Mapping[str, object]
        ) -> None:
            delay = at_s - (perf_counter() - t_start)
            if delay > 0:
                await asyncio.sleep(delay)
            client = await pool.get()
            try:
                await fire(client, index, body)
            finally:
                pool.put_nowait(client)

        await asyncio.gather(
            *(
                dispatch(float(t), i, body)
                for i, (t, body) in enumerate(zip(times, plan))
            )
        )
        while not pool.empty():
            await pool.get_nowait().aclose()
    wall_s = perf_counter() - t_start

    server_stats: Optional[Mapping[str, object]] = None
    try:
        stats_client = _HttpClient(host, port)
        await stats_client.connect()
        status, doc = await asyncio.wait_for(
            stats_client.request("GET", "/stats"), timeout=timeout_s
        )
        if status == 200:
            server_stats = doc
        await stats_client.aclose()
    except (ConnectionError, OSError, asyncio.TimeoutError):
        pass

    return LoadgenResult(
        mode=mode,
        attempted=total_requests,
        completed=tally.completed,
        shed=tally.shed,
        errors=tally.errors,
        infeasible=tally.infeasible,
        wall_s=wall_s,
        latencies_s=tuple(tally.latencies),
        statuses=dict(tally.statuses),
        seed=seed,
        server_stats=server_stats,
        responses=tuple(tally.responses),
        request_records=tuple(tally.records),
        id_echoes=tally.id_echoes,
    )


def selfhosted_loadgen(
    serve_config=None, **loadgen_kwargs
) -> Tuple[LoadgenResult, Dict[str, object]]:
    """Boot a service in-process, drive a run against it, tear it down.

    Returns ``(result, service_summary_scalars)``.  The one-call entry
    the CLI default, the benchmark, and the serving-SLO monitor share —
    no sockets leak, no external process management.
    """
    from repro.serve.service import ReproService, ServeConfig

    async def main() -> Tuple[LoadgenResult, Dict[str, object]]:
        service = ReproService(serve_config or ServeConfig())
        await service.start()
        try:
            result = await run_loadgen(
                service.host, service.port, **loadgen_kwargs
            )
            summary = service.summary_scalars()
        finally:
            await service.close()
        return result, summary

    return asyncio.run(main())
