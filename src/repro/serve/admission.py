"""Model-informed admission control: the scheduler schedules itself.

The paper's response-time analysis models the cluster dispatcher as an
M/D/1 queue and reads p95 response times off Franx's waiting-time
distribution (:mod:`repro.queueing.md1`).  The serving layer applies the
same model to *its own* request queue: requests arrive (approximately)
Poisson, the micro-batcher drains them in near-deterministic per-request
compute time, so the service is its own M/D/1 system.

:func:`derive_occupancy_limit` inverts the model: given the measured
per-request service time ``D`` and the p95 response-time SLO, bisection
finds the largest utilisation ``rho*`` whose analytic p95 still meets
the SLO, and the occupancy threshold is the smallest queue depth ``n``
with ``P(L <= n) >= 0.95`` at ``rho*`` — the depth the stationary
system-size distribution says a compliant queue exceeds only 5% of the
time.  A request arriving to a deeper queue is shed (HTTP 503) instead
of blowing the tail for everyone behind it.

The controller re-derives the threshold whenever its service-time
estimate (an EWMA over measured batch computes) drifts beyond a relative
tolerance, so a workload shift — e.g. cold keys forcing full sweeps —
tightens admission within a few ticks, and a warm cache relaxes it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from repro.errors import ReproError
from repro.obs.metrics import get_registry
from repro.queueing.md1 import MD1Queue

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "OccupancyLimit",
    "derive_occupancy_limit",
]

#: Utilisation bracket for the bisection: the analytic model is exact on
#: (0, 1); searching beyond 0.999 asks for percentiles of an effectively
#: unstable queue.
_RHO_LO, _RHO_HI = 1e-6, 0.999

#: Depth percentile backing the occupancy threshold: the queue is allowed
#: to look like a compliant M/D/1 queue's 95th-percentile depth, no more.
_DEPTH_PERCENTILE = 0.95

#: Hard ceiling on the derived depth so a very loose SLO cannot produce an
#: unbounded (memory-hostile) admission queue.
_MAX_DEPTH = 4096


@dataclass(frozen=True)
class OccupancyLimit:
    """One derived admission threshold and the model inputs behind it."""

    #: Largest utilisation whose analytic M/D/1 p95 meets the SLO.
    rho_star: float
    #: Queue-depth threshold: shed arrivals that would exceed it.
    depth: int
    #: The service-time estimate the derivation used (seconds).
    service_time_s: float
    #: The p95 SLO the derivation targeted (seconds).
    slo_p95_s: float
    #: Analytic p95 response at ``rho_star`` (<= the SLO by construction).
    p95_at_limit_s: float


def derive_occupancy_limit(
    service_time_s: float, slo_p95_s: float, *, tol: float = 1e-4
) -> OccupancyLimit:
    """Derive the shed threshold from the M/D/1 p95 model.

    Bisection on utilisation: p95 response of an M/D/1 queue is strictly
    increasing in ``rho`` at fixed ``D``, so the largest SLO-compliant
    ``rho*`` brackets cleanly.  The depth threshold is the 95th
    percentile of the stationary system size at ``rho*`` (at least 1 —
    a service that cannot meet its SLO even empty still serves one
    request at a time rather than shedding everything).
    """
    if service_time_s <= 0:
        raise ReproError(f"service time must be positive, got {service_time_s}")
    if slo_p95_s <= 0:
        raise ReproError(f"p95 SLO must be positive, got {slo_p95_s}")
    return _derive_cached(float(service_time_s), float(slo_p95_s), float(tol))


@lru_cache(maxsize=256)
def _derive_cached(
    service_time_s: float, slo_p95_s: float, tol: float
) -> OccupancyLimit:
    """The derivation proper, memoized: it is pure and ~0.2 s per call
    (the bisection walks Franx's waiting-time distribution repeatedly),
    and every service boot with default settings asks for the same
    (1 ms, SLO) point.  :class:`OccupancyLimit` is frozen, so sharing one
    instance across controllers is safe."""

    def p95(rho: float) -> float:
        return MD1Queue.from_utilisation(rho, service_time_s).p95_response_s()

    if p95(_RHO_LO) > slo_p95_s:
        # Even an idle queue misses the SLO (D alone exceeds it): admit
        # one request at a time and let the SLO monitor flag the miss.
        return OccupancyLimit(
            rho_star=_RHO_LO,
            depth=1,
            service_time_s=service_time_s,
            slo_p95_s=slo_p95_s,
            p95_at_limit_s=p95(_RHO_LO),
        )
    lo, hi = _RHO_LO, _RHO_HI
    if p95(hi) <= slo_p95_s:
        lo = hi
    else:
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if p95(mid) <= slo_p95_s:
                lo = mid
            else:
                hi = mid
    rho_star = lo
    queue = MD1Queue.from_utilisation(rho_star, service_time_s)
    depth = 1
    while depth < _MAX_DEPTH and queue.system_size_cdf(depth) < _DEPTH_PERCENTILE:
        depth += 1
    return OccupancyLimit(
        rho_star=rho_star,
        depth=depth,
        service_time_s=service_time_s,
        slo_p95_s=slo_p95_s,
        p95_at_limit_s=queue.p95_response_s(),
    )


@dataclass(frozen=True)
class AdmissionDecision:
    """One admit/shed verdict with the inputs that produced it.

    The request trace (:class:`repro.obs.request.RequestContext`) records
    these fields on its ``admission`` stage, so a flight-recorder dump
    shows not just *that* a request was shed but against which depth and
    threshold.
    """

    admitted: bool
    #: Queue depth the request arrived to.
    depth: int
    #: The shed threshold in force at decision time.
    depth_limit: int
    #: The EWMA service-time estimate behind that threshold (seconds).
    service_time_estimate_s: float


class AdmissionController:
    """Shed-or-admit decisions against a model-derived occupancy limit.

    ``observe(service_time_s)`` feeds measured per-request compute times
    into an EWMA; when the estimate drifts more than ``rederive_rel``
    from the one the current limit was derived with, the threshold is
    re-derived from the M/D/1 model.  ``admit(depth)`` is the hot-path
    check: True when a request arriving to ``depth`` queued/in-flight
    requests should be admitted.
    """

    def __init__(
        self,
        slo_p95_s: float,
        *,
        initial_service_time_s: float = 1e-3,
        ewma_alpha: float = 0.2,
        rederive_rel: float = 0.25,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ReproError(f"EWMA alpha must be in (0, 1], got {ewma_alpha}")
        if rederive_rel <= 0:
            raise ReproError(f"rederive tolerance must be positive, got {rederive_rel}")
        self.slo_p95_s = float(slo_p95_s)
        self._alpha = float(ewma_alpha)
        self._rederive_rel = float(rederive_rel)
        self._estimate_s = float(initial_service_time_s)
        self._limit = derive_occupancy_limit(self._estimate_s, self.slo_p95_s)
        self.shed_total = 0
        self.admitted_total = 0
        self.rederivations = 0

    @property
    def limit(self) -> OccupancyLimit:
        """The occupancy limit currently enforced."""
        return self._limit

    @property
    def service_time_estimate_s(self) -> float:
        """The EWMA per-request service-time estimate (seconds)."""
        return self._estimate_s

    def observe(self, service_time_s: float) -> None:
        """Feed one measured per-request service time into the estimate.

        Re-derives the occupancy limit when the estimate has drifted more
        than the relative tolerance from the derivation's input.
        """
        if service_time_s <= 0 or math.isnan(service_time_s):
            return
        self._estimate_s += self._alpha * (service_time_s - self._estimate_s)
        anchor = self._limit.service_time_s
        if abs(self._estimate_s - anchor) > self._rederive_rel * anchor:
            self._limit = derive_occupancy_limit(self._estimate_s, self.slo_p95_s)
            self.rederivations += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "repro_serve_admission_rederivations_total",
                    help="Occupancy-limit re-derivations from the M/D/1 model",
                ).inc()
                registry.gauge(
                    "repro_serve_admission_depth_limit",
                    help="Current model-derived shed threshold (queue depth)",
                ).set(self._limit.depth)

    def decide(self, depth: int) -> AdmissionDecision:
        """The full admit/shed verdict for a request arriving at ``depth``.

        Counts the decision (this IS the hot-path check, not a preview);
        :meth:`admit` is the boolean shorthand.
        """
        admitted = depth < self._limit.depth
        if admitted:
            self.admitted_total += 1
        else:
            self.shed_total += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "repro_serve_shed_total",
                    help="Requests shed by model-informed admission control",
                ).inc()
        return AdmissionDecision(
            admitted=admitted,
            depth=int(depth),
            depth_limit=self._limit.depth,
            service_time_estimate_s=self._estimate_s,
        )

    def admit(self, depth: int) -> bool:
        """Whether a request arriving at queue depth ``depth`` is admitted."""
        return self.decide(depth).admitted

    def stats(self) -> Dict[str, float]:
        """Controller counters and the live threshold (for ``/stats``)."""
        return {
            "depth_limit": float(self._limit.depth),
            "rho_star": self._limit.rho_star,
            "service_time_estimate_s": self._estimate_s,
            "slo_p95_s": self.slo_p95_s,
            "admitted": float(self.admitted_total),
            "shed": float(self.shed_total),
            "rederivations": float(self.rederivations),
        }
