"""Micro-batching tick queue: coalesce concurrent queries into one evaluation.

Concurrent requests rarely need *separate* sweeps: ten ``recommend``
queries against the same (workload, space, budget) digest are one
staircase build plus one vectorized ``best_indices`` call
(:class:`repro.model.batched.DeadlineStaircase`).  The micro-batcher is
the funnel that makes this happen: requests missing the cache enqueue
``(query, future)`` pairs; a background drain task wakes when work
arrives, sleeps one *tick* to let concurrent arrivals pile up, then
drains the queue (up to ``max_batch``) and hands the whole batch to the
service's compute callback, which groups it by digest and performs one
vectorized evaluation per distinct digest.

Per-request deadline tracking: every query carries an absolute loop-time
deadline (from the client's timeout or the server default).  Queries
already expired when the drain picks them up are failed with
:class:`BatchTimeout` *without* being computed — a request nobody is
waiting for anymore must not consume a sweep.

The batch callback runs in a single-worker thread executor so the event
loop keeps accepting (and shedding) requests while NumPy works; a single
worker serialises batches, preserving the one-evaluation-per-tick
contract.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs.metrics import get_registry
from repro.obs.tracing import span

__all__ = ["BatchQuery", "BatchTimeout", "MicroBatcher"]

#: Default tick: long enough to coalesce a burst arriving over one event-loop
#: scheduling quantum, short enough to be invisible next to a cold sweep.
DEFAULT_TICK_S = 0.002

#: Default drain bound per tick.
DEFAULT_MAX_BATCH = 256


class BatchTimeout(ReproError):
    """A query's deadline expired before its batch was computed."""


def _fail(future: "asyncio.Future[Any]", exc: BaseException) -> None:
    """Deliver a failure, marking it retrieved in case the waiter is gone
    (an expired query's client already timed out; the loop must not log a
    never-retrieved exception for it)."""
    if future.done():
        return
    future.set_exception(exc)
    future.exception()


@dataclass
class BatchQuery:
    """One enqueued query: an opaque payload plus its completion future."""

    payload: Any
    future: "asyncio.Future[Any]"
    #: Absolute event-loop time after which the query is abandoned
    #: (None: wait as long as it takes).
    deadline: Optional[float] = None
    #: Filled by the drain loop: when the query left the queue.
    drained_at: float = field(default=0.0)
    #: The submitting request's trace context
    #: (:class:`repro.obs.request.RequestContext`), when it has one; the
    #: drain loop attributes queue-wait time to it.
    ctx: Optional[Any] = None
    #: ``perf_counter`` at enqueue (the trace timebase; ``deadline`` stays
    #: on the event-loop clock).
    enqueued_pc: float = field(default=0.0)


class MicroBatcher:
    """The tick-driven coalescing queue in front of the compute path.

    ``compute_batch(payloads) -> results`` is called with every payload
    drained in one tick and must return one result per payload, in
    order; a result that is an ``Exception`` instance is delivered as a
    failure to that query alone.  ``compute_batch`` runs on the
    single-worker executor, so it must not touch the event loop.
    """

    def __init__(
        self,
        compute_batch: Callable[[Sequence[Any]], Sequence[Any]],
        *,
        tick_s: float = DEFAULT_TICK_S,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        if tick_s < 0:
            raise ReproError(f"tick must be >= 0, got {tick_s}")
        if max_batch < 1:
            raise ReproError(f"max batch must be >= 1, got {max_batch}")
        self._compute_batch = compute_batch
        self.tick_s = float(tick_s)
        self.max_batch = int(max_batch)
        self._queue: "asyncio.Queue[BatchQuery]" = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._drain_task: Optional["asyncio.Task[None]"] = None
        self._closed = False
        self.batches = 0
        self.batched_queries = 0
        self.expired = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start the drain loop on the running event loop."""
        if self._drain_task is None:
            self._closed = False
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain_loop(), name="repro-serve-batcher"
            )

    async def close(self) -> None:
        """Stop the drain loop and fail any still-queued queries."""
        self._closed = True
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        while not self._queue.empty():
            query = self._queue.get_nowait()
            _fail(
                query.future,
                BatchTimeout("service shut down before the query was computed"),
            )
        self._executor.shutdown(wait=False)

    @property
    def depth(self) -> int:
        """Queries currently awaiting a tick (the admission-control input)."""
        return self._queue.qsize()

    # -- submission --------------------------------------------------------
    async def submit(
        self,
        payload: Any,
        *,
        timeout_s: Optional[float] = None,
        ctx: Optional[Any] = None,
    ) -> Any:
        """Enqueue one query and await its batched result.

        Raises :class:`BatchTimeout` when ``timeout_s`` elapses before the
        result lands (whether still queued or mid-compute).  ``ctx`` (a
        :class:`repro.obs.request.RequestContext`) rides the query so the
        drain loop can attribute queue-wait time to the request's trace.
        """
        if self._closed or self._drain_task is None:
            raise ReproError("micro-batcher is not running (call start())")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        deadline = loop.time() + timeout_s if timeout_s is not None else None
        self._queue.put_nowait(
            BatchQuery(
                payload=payload,
                future=future,
                deadline=deadline,
                ctx=ctx,
                enqueued_pc=perf_counter(),
            )
        )
        if timeout_s is None:
            return await future
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout=timeout_s)
        except asyncio.TimeoutError:
            raise BatchTimeout(
                f"query timed out after {timeout_s:g}s awaiting its batch"
            ) from None

    # -- drain loop --------------------------------------------------------
    async def _drain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            try:
                if self.tick_s > 0:
                    await asyncio.sleep(self.tick_s)  # let the burst pile up
            except asyncio.CancelledError:
                # Shutdown mid-tick: the query already left the queue, so
                # close()'s drain cannot see it — fail it here instead of
                # leaving its waiter to hit the full client timeout.
                _fail(
                    first.future,
                    BatchTimeout("service shut down before the query was computed"),
                )
                raise
            batch = [first]
            while len(batch) < self.max_batch and not self._queue.empty():
                batch.append(self._queue.get_nowait())
            now = loop.time()
            now_pc = perf_counter()
            live: List[BatchQuery] = []
            for query in batch:
                query.drained_at = now
                if query.ctx is not None:
                    query.ctx.add_stage(
                        "batch.queue",
                        start_s=query.enqueued_pc,
                        wall_s=now_pc - query.enqueued_pc,
                    )
                if query.future.done():
                    continue  # already timed out client-side
                if query.deadline is not None and now > query.deadline:
                    self.expired += 1
                    _fail(
                        query.future,
                        BatchTimeout("query deadline expired before compute"),
                    )
                    continue
                live.append(query)
            if not live:
                continue
            await self._compute(live)

    async def _compute(self, live: List[BatchQuery]) -> None:
        loop = asyncio.get_running_loop()
        payloads = [q.payload for q in live]
        try:
            with span("serve.batch", size=str(len(live))):
                results = await loop.run_in_executor(
                    self._executor, self._compute_batch, payloads
                )
            if len(results) != len(payloads):
                raise ReproError(
                    f"batch compute returned {len(results)} results for "
                    f"{len(payloads)} queries"
                )
        except BaseException as exc:  # noqa: BLE001 - delivered per-query
            for query in live:
                _fail(query.future, exc)
            if isinstance(exc, asyncio.CancelledError):
                raise  # swallowing would orphan the cancelled drain task
            return
        self.batches += 1
        self.batched_queries += len(live)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_serve_batches_total",
                help="Micro-batches computed by the serve drain loop",
            ).inc()
            registry.histogram(
                "repro_serve_batch_size",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
                help="Queries coalesced per micro-batch",
            ).observe(len(live))
        for query, result in zip(live, results):
            if query.future.done():
                continue
            if isinstance(result, Exception):
                _fail(query.future, result)
            else:
                query.future.set_result(result)

    def stats(self) -> Dict[str, float]:
        """Batch counters for ``/stats`` and the shutdown summary."""
        return {
            "batches": float(self.batches),
            "batched_queries": float(self.batched_queries),
            "expired": float(self.expired),
            "mean_batch_size": (
                self.batched_queries / self.batches if self.batches else 0.0
            ),
            "depth": float(self.depth),
        }
