"""Analytic M/D/c queue — the multi-slot dispatcher extension.

The paper's dispatcher serves one (cluster-wide parallel) job at a time —
an M/D/1 queue.  A natural extension partitions the cluster into ``c``
independent job slots, each serving jobs ``c`` times slower: the classic
pooled-vs-partitioned capacity question.  That requires the M/D/c waiting
time distribution, which this module provides via the same Franx (2001)
construction used for M/D/1:

* the number-in-system process of M/D/c satisfies, exactly and for every
  reference instant ``t``:

      N(t + D) = max(N(t) - c, 0) + Poisson(lambda * D)

  (all jobs in service at ``t`` finish within ``D``; nothing else can),
  so the *time-stationary* distribution of N is the fixed point of that
  map — computed here by damped power iteration with an adaptively
  truncated support;

* Franx's waiting-time formula then reads, for x in [(k-1)D, kD):

      P(W <= x) = exp(-y) * sum_{j=0}^{kc-1} Q_{kc-1-j} * y^j / j!,
      y = lambda * (k*D - x),   Q_n = P(L_q <= n) = P(N <= n + c),

  which reduces exactly to the validated M/D/1 series for c = 1.

The property tests cross-validate the distribution against the
multi-server discrete-event simulator across utilisations and server
counts.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import QueueingError
from repro.util.numerics import bisect_increasing

__all__ = ["MDCQueue"]

#: Stop the stationary fixed-point iteration at this L1 change.
_FIXED_POINT_TOL = 1e-13

#: Hard cap on fixed-point iterations (geometric convergence makes this
#: generous for any utilisation the percentile queries accept).
_MAX_ITERATIONS = 200_000


class MDCQueue:
    """M/D/c queue: Poisson arrivals, deterministic service, c servers."""

    def __init__(
        self, arrival_rate: float, service_time_s: float, n_servers: int
    ) -> None:
        if service_time_s <= 0:
            raise QueueingError(f"service time must be positive, got {service_time_s}")
        if arrival_rate < 0:
            raise QueueingError(f"arrival rate must be non-negative, got {arrival_rate}")
        if n_servers <= 0:
            raise QueueingError(f"n_servers must be positive, got {n_servers}")
        rho = arrival_rate * service_time_s / n_servers
        if rho >= 1.0:
            raise QueueingError(
                f"unstable queue: rho = {rho:.4f} >= 1 "
                f"(lambda = {arrival_rate}, D = {service_time_s}, c = {n_servers})"
            )
        self._lambda = float(arrival_rate)
        self._d = float(service_time_s)
        self._c = int(n_servers)
        self._pi: Optional[np.ndarray] = None
        self._pi_cum: Optional[np.ndarray] = None

    @classmethod
    def from_utilisation(
        cls, utilisation: float, service_time_s: float, n_servers: int
    ) -> "MDCQueue":
        """Build the queue achieving a per-server utilisation."""
        if not 0.0 <= utilisation < 1.0:
            raise QueueingError(f"utilisation must be in [0, 1), got {utilisation}")
        return cls(
            arrival_rate=utilisation * n_servers / service_time_s,
            service_time_s=service_time_s,
            n_servers=n_servers,
        )

    # ------------------------------------------------------------------
    @property
    def arrival_rate(self) -> float:
        """Poisson arrival rate (jobs/s)."""
        return self._lambda

    @property
    def service_time_s(self) -> float:
        """Deterministic service time D (seconds)."""
        return self._d

    @property
    def n_servers(self) -> int:
        """Number of parallel servers c."""
        return self._c

    @property
    def utilisation(self) -> float:
        """Per-server utilisation rho = lambda * D / c."""
        return self._lambda * self._d / self._c

    @property
    def offered_load(self) -> float:
        """Offered load lambda * D (mean busy servers)."""
        return self._lambda * self._d

    # ------------------------------------------------------------------
    # Stationary system-size distribution (fixed point of the slot map).
    # ------------------------------------------------------------------
    def _poisson_pmf_vector(self, n: int) -> np.ndarray:
        mu = self.offered_load
        if mu == 0.0:
            out = np.zeros(n + 1)
            out[0] = 1.0
            return out
        ks = np.arange(n + 1)
        log_pmf = ks * math.log(mu) - mu - np.array([math.lgamma(k + 1) for k in ks])
        return np.exp(log_pmf)

    def _stationary(self) -> np.ndarray:
        if self._pi is not None:
            return self._pi
        mu = self.offered_load
        # Initial support: generous multiple of the M/M/c-style mean queue.
        size = int(max(64, 8 * mu, 20 / max(1e-9, 1.0 - self.utilisation)))
        for _ in range(8):  # grow the support until the tail is negligible
            pmf_a = self._poisson_pmf_vector(size)
            pi = np.zeros(size + 1)
            pi[0] = 1.0
            for _ in range(_MAX_ITERATIONS):
                # w[m] = P(max(N - c, 0) = m)
                w = np.zeros(size + 1)
                w[0] = pi[: self._c + 1].sum()
                tail = pi[self._c + 1 :]
                w[1 : 1 + len(tail)] = tail
                nxt = np.convolve(w, pmf_a)[: size + 1]
                total = nxt.sum()
                if total <= 0:
                    raise QueueingError("stationary iteration lost all mass")
                nxt /= total
                delta = float(np.abs(nxt - pi).sum())
                pi = nxt
                if delta < _FIXED_POINT_TOL:
                    break
            if pi[-1] < 1e-12:
                self._pi = pi
                self._pi_cum = np.minimum(np.cumsum(pi), 1.0)
                return pi
            size *= 2
        raise QueueingError(
            f"stationary distribution did not fit a {size}-state truncation; "
            f"utilisation {self.utilisation:.4f} is too close to 1"
        )

    def system_size_pmf(self, n: int) -> float:
        """Stationary probability of exactly ``n`` customers in the system."""
        if n < 0:
            raise QueueingError(f"system size must be non-negative, got {n}")
        pi = self._stationary()
        return float(pi[n]) if n < len(pi) else 0.0

    def system_size_cdf(self, n: int) -> float:
        """Stationary probability of at most ``n`` customers in the system."""
        if n < 0:
            return 0.0
        self._stationary()
        assert self._pi_cum is not None
        return float(self._pi_cum[min(n, len(self._pi_cum) - 1)])

    def queue_length_cdf(self, n: int) -> float:
        """P(L_q <= n): customers waiting, excluding the c in service."""
        if n < 0:
            return 0.0
        return self.system_size_cdf(n + self._c)

    @property
    def probability_of_wait(self) -> float:
        """P(W > 0) = P(all servers busy at arrival) (PASTA)."""
        return 1.0 - self.system_size_cdf(self._c - 1)

    # ------------------------------------------------------------------
    # Waiting-time distribution (Franx, general c).
    # ------------------------------------------------------------------
    def wait_cdf(self, x: float) -> float:
        """P(W <= x) via the positive-term Franx series."""
        if x < 0:
            return 0.0
        if self._lambda == 0.0:
            return 1.0
        d = self._d
        k = int(math.floor(x / d)) + 1  # x in [(k-1)D, kD)
        y = self._lambda * (k * d - x)
        self._stationary()
        log_weight = -y
        log_y = math.log(y) if y > 0 else -math.inf
        total = 0.0
        for j in range(k * self._c):
            q = self.queue_length_cdf(k * self._c - 1 - j)
            if q > 0.0 and log_weight > -745.0:
                total += q * math.exp(log_weight)
            log_weight += log_y - math.log(j + 1)
        return min(total, 1.0)

    def response_cdf(self, t: float) -> float:
        """P(R <= t) for the response time R = W + D."""
        return self.wait_cdf(t - self._d)

    def mean_wait_s(self, *, tail_tol: float = 1e-10) -> float:
        """E[W] by integrating the complementary CDF piecewise.

        No simple closed form exists for M/D/c; the integral over each
        [(k-1)D, kD) piece is evaluated with fixed Gauss-Legendre nodes and
        the sum truncates when a piece's contribution falls below
        ``tail_tol`` times the running total.
        """
        nodes, weights = np.polynomial.legendre.leggauss(16)
        total = 0.0
        d = self._d
        for k in range(10_000):
            a, b = k * d, (k + 1) * d
            xs = 0.5 * (b - a) * nodes + 0.5 * (a + b)
            piece = 0.5 * (b - a) * float(
                np.sum(weights * np.array([1.0 - self.wait_cdf(float(x)) for x in xs]))
            )
            total += piece
            if piece < tail_tol * max(total, 1e-300) and k > 0:
                break
        return total

    def wait_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the queueing delay W."""
        if not 0.0 <= q < 100.0:
            raise QueueingError(f"percentile must be in [0, 100), got {q}")
        target = q / 100.0
        if self.wait_cdf(0.0) >= target:
            return 0.0
        hi = self._d
        for _ in range(200):
            if self.wait_cdf(hi) >= target:
                break
            hi *= 2.0
        else:  # pragma: no cover - CDF -> 1 guarantees exit
            raise QueueingError(f"failed to bracket the {q}th wait percentile")
        return bisect_increasing(self.wait_cdf, target, 0.0, hi, tol=1e-12)

    def response_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the response time R = W + D."""
        return self.wait_percentile(q) + self._d

    def p95_response_s(self) -> float:
        """95th-percentile response time."""
        return self.response_percentile(95.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MDCQueue(lambda={self._lambda:.6g}/s, D={self._d:.6g}s, "
            f"c={self._c}, rho={self.utilisation:.4f})"
        )
