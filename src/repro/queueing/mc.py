"""Vectorized Monte-Carlo queue engine.

The discrete-event simulator in :mod:`repro.queueing.des` advances the
single-server FIFO recursion one job at a time::

    start_n      = max(arrival_n, completion_{n-1})
    completion_n = start_n + service_n

The loop-carried dependency makes it a pure-Python bottleneck, which caps
the replication counts the statistical validation of the paper's
95th-percentile claims can afford.  This module removes the loop with the
vectorized Lindley form.  Writing ``CS_n = sum_{j<=n} S_j`` for the service
cumsum, the completion time of job ``n`` is

    C_n = CS_n + max_{k<=n} (A_k - CS_{k-1})

so with ``B_n = A_n - CS_{n-1}`` the waiting times collapse to

    W_n = C_n - S_n - A_n = running_max(B)_n - B_n

— three elementwise passes plus one :func:`numpy.maximum.accumulate`, no
Python loop.  The scalar recursion is kept here as
:func:`scalar_lindley_waits`, the oracle the vectorized kernel is
property-tested against (agreement within ``1e-12`` of the simulated span;
the two differ only by cumulative-sum round-off, which is O(n*eps*T)).

Replications
------------
:class:`MonteCarloQueue` runs batched replications: ``n_reps`` independent
simulations of ``n_jobs`` jobs each, as rows of a conceptual ``(reps, jobs)``
array.  Each replication draws from its own :class:`numpy.random.Generator`
seeded via ``SeedSequence.spawn`` from a single root seed, so results are
reproducible and independent of replication execution order.  Within one
replication the randomness contract is: first one batch of ``n_jobs``
inter-arrival gaps, then (for random service) one batch of ``n_jobs``
service times — arrivals are finalised before any service draw.

The per-replication wait/response vectors are reduced on the fly (the
working set stays cache-resident); :class:`ReplicatedResult` keeps the
per-replication percentiles, utilisation and busy/idle split, and derives
mean estimates with normal (Student-t) and bootstrap confidence intervals
for the cross-validation harness in
:mod:`repro.experiments.validation_mc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (processes imports mc)
    from repro.queueing.processes import ArrivalSpec

from repro.errors import QueueingError
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.util.rng import DEFAULT_SEED

__all__ = [
    "BatchServiceSampler",
    "lindley_waits",
    "scalar_lindley_waits",
    "waits_agreement",
    "ExponentialService",
    "UniformService",
    "exponential_service",
    "uniform_service",
    "ConfidenceInterval",
    "ReplicatedResult",
    "SliceStats",
    "MonteCarloQueue",
]

#: A batched service sampler: given an RNG and a count, return that many
#: service times (seconds) in one vectorized draw.  The batched counterpart
#: of :data:`repro.queueing.des.ServiceModel`.
BatchServiceSampler = Callable[[np.random.Generator, int], np.ndarray]

#: Percentiles every replication records (the paper reports p95; p50/p99
#: bracket the tail for the validation report).
TRACKED_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def lindley_waits(arrivals: np.ndarray, services: Union[float, np.ndarray]) -> np.ndarray:
    """Waiting times of a single-server FIFO queue, vectorized.

    Accepts 1-D arrays (one replication) or 2-D ``(reps, jobs)`` arrays
    batched along the last axis.  ``services`` may be a scalar (the
    deterministic M/D/1 case) or an array matching ``arrivals``.
    """
    a = np.asarray(arrivals, dtype=float)
    if a.size == 0:
        return np.zeros_like(a)
    if np.isscalar(services) or np.ndim(services) == 0:
        d = float(services)
        # CS_{n-1} = d * (n - 1): no service array needed.
        b = a - d * np.arange(a.shape[-1], dtype=float)
    else:
        s = np.asarray(services, dtype=float)
        if s.shape != a.shape:
            raise QueueingError(
                f"arrival/service shape mismatch: {a.shape} vs {s.shape}"
            )
        cs_prev = np.cumsum(s, axis=-1) - s
        b = a - cs_prev
    m = np.maximum.accumulate(b, axis=-1)
    return m - b


def scalar_lindley_waits(
    arrivals: np.ndarray, services: Union[float, np.ndarray]
) -> np.ndarray:
    """The loop-carried FIFO recursion — the oracle for :func:`lindley_waits`.

    This is the exact per-job recursion the discrete-event simulator used
    before the vectorized fast path existed; it is kept as the reference
    the kernel is property-tested (and benchmarked) against.
    """
    a = np.asarray(arrivals, dtype=float)
    if a.ndim != 1:
        raise QueueingError("the scalar oracle handles one replication at a time")
    n = a.size
    if np.isscalar(services) or np.ndim(services) == 0:
        s = np.full(n, float(services))
    else:
        s = np.asarray(services, dtype=float)
    waits = np.empty(n)
    completion = 0.0
    for i in range(n):
        arrival = a[i]
        start = arrival if arrival > completion else completion
        waits[i] = start - arrival
        completion = start + s[i]
    return waits


def waits_agreement(
    vectorized: np.ndarray, scalar: np.ndarray, arrivals: np.ndarray,
    services: Union[float, np.ndarray],
) -> float:
    """Span-normalised disagreement between the two kernels.

    The kernels compute identical quantities in different summation orders,
    so their difference is bounded by the round-off of a length-n cumulative
    sum — an *absolute* error proportional to the simulated span.  The
    engine's contract is therefore stated scale-free::

        max |W_vec - W_scalar| / max(1, span)  <=  1e-12

    where ``span`` is the last completion time.
    """
    v = np.asarray(vectorized, dtype=float)
    s = np.asarray(scalar, dtype=float)
    if v.size == 0:
        return 0.0
    a = np.asarray(arrivals, dtype=float)
    last_service = (
        float(services) if np.ndim(services) == 0 else float(np.asarray(services).flat[-1])
    )
    span = float(a.flat[-1] + s.flat[-1] + last_service)
    return float(np.max(np.abs(v - s)) / max(1.0, span))


# ----------------------------------------------------------------------
# Service samplers
# ----------------------------------------------------------------------
# Samplers are callable *classes* rather than closures so a configured
# MonteCarloQueue pickles cleanly into repro.parallel worker processes
# (a closure cannot cross a process boundary).  The factory functions
# below keep the original construction API.
class ExponentialService:
    """Exponential service times with a given mean (M/M/1 service)."""

    __slots__ = ("mean_s",)

    def __init__(self, mean_s: float) -> None:
        if mean_s <= 0:
            raise QueueingError(f"mean service time must be positive, got {mean_s}")
        self.mean_s = float(mean_s)

    def __call__(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self.mean_s, size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExponentialService(mean_s={self.mean_s!r})"


class UniformService:
    """Uniform service times on ``[low_s, high_s)`` — bounded variability."""

    __slots__ = ("low_s", "high_s")

    def __init__(self, low_s: float, high_s: float) -> None:
        if not 0 < low_s <= high_s:
            raise QueueingError(f"need 0 < low <= high, got ({low_s}, {high_s})")
        self.low_s = float(low_s)
        self.high_s = float(high_s)

    def __call__(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low_s, self.high_s, size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniformService(low_s={self.low_s!r}, high_s={self.high_s!r})"


def exponential_service(mean_s: float) -> BatchServiceSampler:
    """Exponential service times with the given mean (M/M/1 service)."""
    return ExponentialService(mean_s)


def uniform_service(low_s: float, high_s: float) -> BatchServiceSampler:
    """Uniform service times on ``[low_s, high_s)`` — bounded variability."""
    return UniformService(low_s, high_s)


# ----------------------------------------------------------------------
# Replicated results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean estimate with a two-sided confidence interval."""

    mean: float
    lo: float
    hi: float
    level: float
    method: str

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lo <= value <= self.hi

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return 0.5 * (self.hi - self.lo)


@dataclass(frozen=True)
class ReplicatedResult:
    """Per-replication statistics of a batched Monte-Carlo run.

    All arrays have length ``n_reps``.  Response-time percentiles and means
    are computed on the post-warm-up jobs; the utilisation and busy/idle
    split cover the full replication span (the energy accounting needs the
    whole busy period, not just the measured window).
    """

    n_jobs: int
    n_reps: int
    warmup_jobs: int
    arrival_rate: float
    #: (n_percentiles, n_reps) response-time percentiles, rows ordered as
    #: :data:`TRACKED_PERCENTILES`.
    response_percentiles_s: np.ndarray
    mean_response_s: np.ndarray
    mean_wait_s: np.ndarray
    utilisation: np.ndarray
    busy_time_s: np.ndarray
    idle_time_s: np.ndarray
    span_s: np.ndarray

    def __post_init__(self) -> None:
        if self.n_reps < 1:
            raise QueueingError("need at least one replication")
        expected = (len(TRACKED_PERCENTILES), self.n_reps)
        if self.response_percentiles_s.shape != expected:
            raise QueueingError(
                f"percentile matrix must be {expected}, "
                f"got {self.response_percentiles_s.shape}"
            )

    # -- access ---------------------------------------------------------
    def percentile_samples(self, q: float) -> np.ndarray:
        """Per-replication estimates of the ``q``-th response percentile."""
        for i, tracked in enumerate(TRACKED_PERCENTILES):
            if abs(tracked - q) < 1e-9:
                return self.response_percentiles_s[i]
        raise QueueingError(
            f"percentile {q} not tracked; available: {TRACKED_PERCENTILES}"
        )

    @property
    def p50_s(self) -> np.ndarray:
        """Per-replication median response times."""
        return self.percentile_samples(50.0)

    @property
    def p95_s(self) -> np.ndarray:
        """Per-replication 95th-percentile response times — the paper's
        Figures 9-12 metric."""
        return self.percentile_samples(95.0)

    @property
    def p99_s(self) -> np.ndarray:
        """Per-replication 99th-percentile response times."""
        return self.percentile_samples(99.0)

    # -- interval estimates ---------------------------------------------
    def _mean_ci_normal(self, samples: np.ndarray, level: float) -> ConfidenceInterval:
        from scipy import stats

        r = samples.size
        mean = float(samples.mean())
        if r < 2:
            raise QueueingError("normal CI needs at least 2 replications")
        half = float(
            stats.t.ppf(0.5 + level / 2.0, df=r - 1) * samples.std(ddof=1) / np.sqrt(r)
        )
        return ConfidenceInterval(mean, mean - half, mean + half, level, "normal")

    def _mean_ci_bootstrap(
        self, samples: np.ndarray, level: float, n_resamples: int, seed: int
    ) -> ConfidenceInterval:
        r = samples.size
        if r < 2:
            raise QueueingError("bootstrap CI needs at least 2 replications")
        rng = np.random.default_rng(np.random.SeedSequence([seed, r, n_resamples]))
        idx = rng.integers(0, r, size=(n_resamples, r))
        means = samples[idx].mean(axis=1)
        alpha = (1.0 - level) / 2.0
        lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
        return ConfidenceInterval(
            float(samples.mean()), float(lo), float(hi), level, "bootstrap"
        )

    def percentile_ci(
        self,
        q: float = 95.0,
        *,
        level: float = 0.99,
        method: str = "normal",
        n_resamples: int = 2000,
        seed: int = DEFAULT_SEED,
    ) -> ConfidenceInterval:
        """CI for the mean ``q``-th response percentile across replications.

        ``method`` is ``"normal"`` (Student-t over the per-replication
        estimates) or ``"bootstrap"`` (percentile bootstrap over
        replications).
        """
        if not 0.0 < level < 1.0:
            raise QueueingError(f"confidence level must be in (0, 1), got {level}")
        samples = self.percentile_samples(q)
        if method == "normal":
            return self._mean_ci_normal(samples, level)
        if method == "bootstrap":
            return self._mean_ci_bootstrap(samples, level, n_resamples, seed)
        raise QueueingError(f"unknown CI method {method!r}")

    def mean_response_ci(
        self, *, level: float = 0.99, method: str = "normal"
    ) -> ConfidenceInterval:
        """CI for the mean response time across replications."""
        if method == "normal":
            return self._mean_ci_normal(self.mean_response_s, level)
        if method == "bootstrap":
            return self._mean_ci_bootstrap(
                self.mean_response_s, level, 2000, DEFAULT_SEED
            )
        raise QueueingError(f"unknown CI method {method!r}")

    @property
    def mean_utilisation(self) -> float:
        """Mean per-replication busy fraction."""
        return float(self.utilisation.mean())

    @property
    def busy_fraction(self) -> float:
        """Pooled busy time over pooled span — the energy-accounting split."""
        return float(self.busy_time_s.sum() / self.span_s.sum())


@dataclass(frozen=True)
class SliceStats:
    """Reduced statistics of the replication slice ``[start, stop)``.

    The picklable unit of work :mod:`repro.parallel.mc` ships between
    processes: every array has length ``stop - start`` and holds exactly
    the per-replication reductions :meth:`MonteCarloQueue.run` computes,
    for the slice's replications only.  Because replication ``r`` always
    draws from stream ``r`` of ``SeedSequence(seed).spawn(n_reps)``,
    slices reassemble into a :class:`ReplicatedResult` that is
    bit-identical to a serial run regardless of how the slices were cut
    or which process computed them.
    """

    start: int
    stop: int
    warmup_jobs: int
    response_percentiles_s: np.ndarray
    mean_response_s: np.ndarray
    mean_wait_s: np.ndarray
    utilisation: np.ndarray
    busy_time_s: np.ndarray
    idle_time_s: np.ndarray
    span_s: np.ndarray

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise QueueingError(
                f"need 0 <= start < stop, got [{self.start}, {self.stop})"
            )
        expected = (len(TRACKED_PERCENTILES), self.stop - self.start)
        if self.response_percentiles_s.shape != expected:
            raise QueueingError(
                f"slice percentile matrix must be {expected}, "
                f"got {self.response_percentiles_s.shape}"
            )


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class MonteCarloQueue:
    """Batched Monte-Carlo simulation of the paper's dispatcher queue.

    Parameters
    ----------
    arrival_rate:
        Either a Poisson arrival rate ``lambda_job`` (jobs/s) or an
        arrival process object from :mod:`repro.queueing.processes`
        (anything with a ``rate`` attribute and a
        ``sample_arrivals(rng, n)`` method).  A process reporting a
        non-None ``poisson_rate()`` takes the engine's preallocated
        Poisson fast path, which consumes identical randomness.
    service:
        Either a fixed service time in seconds (the paper's deterministic
        T_P — an M/D/1 queue) or a :data:`BatchServiceSampler` for general
        service distributions.  A sampler exposing a non-None ``fixed_s``
        (``repro.queueing.processes.DeterministicService``) takes the
        exact deterministic reductions — the plug-in form is a pure
        refactor of the M/D/1 case.
    seed:
        Root seed; each replication's generator is spawned from it.
    warmup_fraction:
        Fraction of each replication's jobs discarded from the response
        statistics to remove the empty-start transient (utilisation and the
        busy/idle split still cover the full span).
    """

    def __init__(
        self,
        arrival_rate: Union[float, "ArrivalSpec"],
        service: Union[float, BatchServiceSampler],
        *,
        seed: int = DEFAULT_SEED,
        warmup_fraction: float = 0.1,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise QueueingError(
                f"warmup fraction must be in [0, 1), got {warmup_fraction}"
            )
        if isinstance(arrival_rate, (int, float, np.integer, np.floating)):
            if arrival_rate <= 0:
                raise QueueingError(
                    f"arrival rate must be positive, got {arrival_rate}"
                )
            self._arrivals: Optional[object] = None
            self._rate = float(arrival_rate)
        else:
            rate = getattr(arrival_rate, "rate", None)
            if rate is None or not callable(
                getattr(arrival_rate, "sample_arrivals", None)
            ):
                raise QueueingError(
                    "arrival_rate must be a number or an arrival process "
                    "with .rate and .sample_arrivals(rng, n) "
                    f"(got {type(arrival_rate).__name__})"
                )
            poisson = getattr(arrival_rate, "poisson_rate", lambda: None)()
            # An exactly-Poisson process takes the in-place buffer path,
            # which draws the same stream the same way (pinned by
            # tests/queueing/test_processes.py).
            self._arrivals = None if poisson is not None else arrival_rate
            self._rate = float(rate)
        if callable(service):
            fixed = getattr(service, "fixed_s", None)
            if fixed is not None:
                self._sampler: Optional[BatchServiceSampler] = None
                self._service_fixed: Optional[float] = float(fixed)
            else:
                self._sampler = service
                self._service_fixed = None
        else:
            if service <= 0:
                raise QueueingError(f"service time must be positive, got {service}")
            self._sampler = None
            self._service_fixed = float(service)
        self._seed = int(seed)
        self._warmup_fraction = float(warmup_fraction)

    # -- constructors ----------------------------------------------------
    @classmethod
    def md1(
        cls, arrival_rate: float, service_time_s: float, **kwargs: object
    ) -> "MonteCarloQueue":
        """The paper's M/D/1 queue (deterministic service at T_P)."""
        return cls(arrival_rate, float(service_time_s), **kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_utilisation(
        cls, utilisation: float, service_time_s: float, **kwargs: object
    ) -> "MonteCarloQueue":
        """Build the M/D/1 queue achieving a target utilisation
        (``U = T_P * lambda_job`` inverted, like
        :meth:`repro.queueing.md1.MD1Queue.from_utilisation`)."""
        if not 0.0 < utilisation < 1.0:
            raise QueueingError(f"utilisation must be in (0, 1), got {utilisation}")
        return cls(
            utilisation / service_time_s, float(service_time_s), **kwargs  # type: ignore[arg-type]
        )

    # -- properties ------------------------------------------------------
    @property
    def arrival_rate(self) -> float:
        """Long-run mean arrival rate (jobs/s)."""
        return self._rate

    @property
    def arrival_process(self) -> Optional[object]:
        """The arrival process object, or None on the Poisson fast path."""
        return self._arrivals

    @property
    def service_time_s(self) -> Optional[float]:
        """The deterministic service time, or None for random service."""
        return self._service_fixed

    @property
    def utilisation(self) -> Optional[float]:
        """``lambda * D`` for deterministic service, else None."""
        if self._service_fixed is None:
            return None
        return self._rate * self._service_fixed

    def spawn_generators(self, n_reps: int) -> list[np.random.Generator]:
        """The per-replication generators (exposed for reproducibility
        tests): stream ``r`` is ``default_rng(SeedSequence(seed).spawn(n)[r])``."""
        root = np.random.SeedSequence(self._seed)
        return [np.random.default_rng(child) for child in root.spawn(n_reps)]

    # -- simulation ------------------------------------------------------
    def _sample_arrival_batch(
        self, rng: np.random.Generator, n_jobs: int
    ) -> np.ndarray:
        """One replication's arrival times from the process object."""
        arrivals = np.asarray(
            self._arrivals.sample_arrivals(rng, n_jobs), dtype=float  # type: ignore[union-attr]
        )
        if arrivals.shape != (n_jobs,):
            raise QueueingError(
                f"arrival process returned shape {arrivals.shape}, "
                f"expected ({n_jobs},)"
            )
        if n_jobs and (arrivals[0] < 0 or np.any(arrivals[1:] < arrivals[:-1])):
            raise QueueingError(
                "arrival process produced a negative or decreasing time"
            )
        return arrivals

    def _replication_inputs(
        self, rng: np.random.Generator, n_jobs: int,
        gaps: np.ndarray,
    ) -> Tuple[np.ndarray, Union[float, np.ndarray]]:
        """Sample one replication's arrivals (into ``gaps``) and services."""
        if self._arrivals is None:
            rng.standard_exponential(n_jobs, out=gaps)
            np.multiply(gaps, 1.0 / self._rate, out=gaps)
            arrivals = np.cumsum(gaps)
        else:
            arrivals = self._sample_arrival_batch(rng, n_jobs)
        if self._service_fixed is not None:
            return arrivals, self._service_fixed
        services = np.asarray(self._sampler(rng, n_jobs), dtype=float)  # type: ignore[misc]
        if services.shape != (n_jobs,):
            raise QueueingError(
                f"service sampler returned shape {services.shape}, "
                f"expected ({n_jobs},)"
            )
        if np.any(services <= 0):
            raise QueueingError("service sampler produced a non-positive time")
        return arrivals, services

    def _iter_waits(self, n_jobs: int, n_reps: int, start: int = 0,
                    stop: Optional[int] = None):
        """Yield ``(arrivals, services, waits)`` for replications
        ``[start, stop)`` of an ``n_reps``-replication run.

        The vectorized hot path: every array except the sampler's service
        draw lives in buffers reused across replications (one replication's
        working set stays cache-resident, and no per-rep page faulting).
        Consumers must reduce or copy each yield before advancing — the
        buffers are overwritten by the next replication.

        The slice bounds exist for :mod:`repro.parallel.mc`: all ``n_reps``
        generators are spawned (stream identity depends on the *total*
        replication count, never on the slice) and only the slice's streams
        are simulated.
        """
        registry = get_registry()
        rep_counter = jobs_counter = reuse_counter = None
        if registry.enabled:
            rep_counter = registry.counter(
                "repro_mc_replications_total",
                help="Monte-Carlo replication batches simulated",
            )
            jobs_counter = registry.counter(
                "repro_mc_jobs_simulated_total",
                help="Jobs pushed through the vectorized Lindley kernel",
            )
            reuse_counter = registry.counter(
                "repro_mc_buffer_reuses_total",
                help="Replications served from the preallocated work buffers",
            )
        gaps = np.empty(n_jobs)
        arrivals = np.empty(n_jobs)
        b = np.empty(n_jobs)
        waits = np.empty(n_jobs)
        if self._service_fixed is not None:
            # CS_{n-1} for deterministic service, shared by every rep.
            drift = self._service_fixed * np.arange(n_jobs, dtype=float)
        else:
            cs_prev = np.empty(n_jobs)
        inv_rate = 1.0 / self._rate
        generators = self.spawn_generators(n_reps)[start:stop]
        for rep_index, rng in enumerate(generators):
            if self._arrivals is None:
                rng.standard_exponential(n_jobs, out=gaps)
                np.multiply(gaps, inv_rate, out=gaps)
                np.cumsum(gaps, out=arrivals)
            else:
                # Copy into the shared buffer so the Lindley passes below
                # stay in-place regardless of the process.  Arrivals are
                # fully drawn before any service draw (the contract).
                arrivals[:] = self._sample_arrival_batch(rng, n_jobs)
            if self._service_fixed is not None:
                services: Union[float, np.ndarray] = self._service_fixed
                np.subtract(arrivals, drift, out=b)
            else:
                services = np.asarray(self._sampler(rng, n_jobs), dtype=float)  # type: ignore[misc]
                if services.shape != (n_jobs,):
                    raise QueueingError(
                        f"service sampler returned shape {services.shape}, "
                        f"expected ({n_jobs},)"
                    )
                if np.any(services <= 0):
                    raise QueueingError(
                        "service sampler produced a non-positive time"
                    )
                np.cumsum(services, out=cs_prev)
                np.subtract(cs_prev, services, out=cs_prev)
                np.subtract(arrivals, cs_prev, out=b)
            np.maximum.accumulate(b, out=waits)
            np.subtract(waits, b, out=waits)
            if rep_counter is not None:
                rep_counter.inc()
                jobs_counter.inc(n_jobs)
                if rep_index:
                    reuse_counter.inc()
            yield arrivals, services, waits

    def simulate_waits(
        self, n_jobs: int, n_reps: int, *, engine: str = "vectorized"
    ) -> np.ndarray:
        """All replications' waiting times as a ``(n_reps, n_jobs)`` array.

        ``engine`` selects the vectorized Lindley kernel (default) or the
        ``"scalar"`` loop oracle; both consume identical randomness, so the
        outputs differ only by cumulative-sum round-off.
        """
        if n_jobs <= 0:
            raise QueueingError(f"n_jobs must be positive, got {n_jobs}")
        if n_reps <= 0:
            raise QueueingError(f"n_reps must be positive, got {n_reps}")
        if engine not in ("vectorized", "scalar"):
            raise QueueingError(f"unknown engine {engine!r}")
        out = np.empty((n_reps, n_jobs))
        with span("mc.simulate_waits", engine=engine, n_jobs=n_jobs, n_reps=n_reps):
            if engine == "vectorized":
                for r, (_, _, waits) in enumerate(self._iter_waits(n_jobs, n_reps)):
                    out[r] = waits
            else:
                gaps = np.empty(n_jobs)
                for r, rng in enumerate(self.spawn_generators(n_reps)):
                    arrivals, services = self._replication_inputs(rng, n_jobs, gaps)
                    out[r] = scalar_lindley_waits(arrivals, services)
        return out

    def _warmup_jobs(self, n_jobs: int) -> int:
        warmup = int(self._warmup_fraction * n_jobs)
        if warmup >= n_jobs:
            warmup = n_jobs - 1
        return warmup

    def run_slice(
        self, n_jobs: int, n_reps: int, start: int, stop: int
    ) -> SliceStats:
        """Simulate and reduce replications ``[start, stop)`` of an
        ``n_reps``-replication run.

        The worker-side half of :meth:`run`: identical arithmetic, on a
        contiguous slice of the replication streams.  A serial
        :meth:`run` is literally ``run_slice(n_jobs, n_reps, 0, n_reps)``
        rewrapped, which is what makes parallel fan-out bit-identical to
        the serial path — both perform the same reductions on the same
        streams, only the process doing the work differs.
        """
        if n_jobs <= 0:
            raise QueueingError(f"n_jobs must be positive, got {n_jobs}")
        if n_reps <= 0:
            raise QueueingError(f"n_reps must be positive, got {n_reps}")
        if not 0 <= start < stop <= n_reps:
            raise QueueingError(
                f"need 0 <= start < stop <= n_reps, got [{start}, {stop}) "
                f"of {n_reps}"
            )
        warmup = self._warmup_jobs(n_jobs)
        width = stop - start

        pct = np.empty((len(TRACKED_PERCENTILES), width))
        mean_resp = np.empty(width)
        mean_wait = np.empty(width)
        util = np.empty(width)
        busy = np.empty(width)
        idle = np.empty(width)
        spans = np.empty(width)
        q = np.asarray(TRACKED_PERCENTILES)

        with span("mc.run_slice", n_jobs=n_jobs, n_reps=n_reps,
                  start=start, stop=stop):
            for r, (arrivals, services, waits) in enumerate(
                self._iter_waits(n_jobs, n_reps, start, stop)
            ):
                if self._service_fixed is not None:
                    d = self._service_fixed
                    busy_r = n_jobs * d
                    measured = waits[warmup:]
                    # R = W + D exactly: percentiles shift by D.
                    pct[:, r] = np.percentile(measured, q) + d
                    mean_wait[r] = measured.mean()
                    mean_resp[r] = mean_wait[r] + d
                    last_completion = arrivals[-1] + waits[-1] + d
                else:
                    responses = waits + services
                    busy_r = float(services.sum())
                    measured = responses[warmup:]
                    pct[:, r] = np.percentile(measured, q)
                    mean_resp[r] = measured.mean()
                    mean_wait[r] = waits[warmup:].mean()
                    last_completion = arrivals[-1] + waits[-1] + services[-1]
                spans[r] = last_completion
                busy[r] = busy_r
                idle[r] = last_completion - busy_r
                util[r] = busy_r / last_completion
        return SliceStats(
            start=start,
            stop=stop,
            warmup_jobs=warmup,
            response_percentiles_s=pct,
            mean_response_s=mean_resp,
            mean_wait_s=mean_wait,
            utilisation=util,
            busy_time_s=busy,
            idle_time_s=idle,
            span_s=spans,
        )

    def run(
        self, n_jobs: int, n_reps: int, *, workers: Optional[int] = None
    ) -> ReplicatedResult:
        """Run ``n_reps`` independent replications of ``n_jobs`` jobs each.

        Each replication is reduced to its tracked percentiles, means and
        busy/idle split immediately, while its arrays are cache-hot; the
        full ``(reps, jobs)`` wait matrix is never materialised (use
        :meth:`simulate_waits` when the raw waits are needed).

        ``workers`` fans the replications out across a process pool via
        :mod:`repro.parallel.mc` (``None``/``1`` runs in-process, ``0``
        means one worker per available CPU).  Replication ``r`` always
        consumes stream ``r`` of ``SeedSequence(seed).spawn(n_reps)``, so
        the result is **bit-identical at any worker count** — pinned by
        ``tests/parallel/test_mc_parallel.py`` and the hypothesis
        invariants in ``tests/properties/test_parallel_invariants.py``.
        """
        if workers is not None and workers != 1:
            from repro.parallel.mc import run_parallel

            return run_parallel(self, n_jobs, n_reps, workers=workers)
        with span("mc.run", n_jobs=n_jobs, n_reps=n_reps):
            stats = self.run_slice(n_jobs, n_reps, 0, n_reps)
        return ReplicatedResult(
            n_jobs=n_jobs,
            n_reps=n_reps,
            warmup_jobs=stats.warmup_jobs,
            arrival_rate=self._rate,
            response_percentiles_s=stats.response_percentiles_s,
            mean_response_s=stats.mean_response_s,
            mean_wait_s=stats.mean_wait_s,
            utilisation=stats.utilisation,
            busy_time_s=stats.busy_time_s,
            idle_time_s=stats.idle_time_s,
            span_s=stats.span_s,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        service = (
            f"D={self._service_fixed:.6g}s"
            if self._service_fixed is not None
            else "service=<sampler>"
        )
        arrivals = (
            "Poisson" if self._arrivals is None else type(self._arrivals).__name__
        )
        return (
            f"MonteCarloQueue({arrivals} lambda={self._rate:.6g}/s, "
            f"{service}, seed={self._seed})"
        )
