"""Analytic M/M/1 and M/G/1 queues.

The paper commits to deterministic service (M/D/1).  These companions serve
two purposes: (i) M/M/1 has closed-form waiting and response distributions,
giving an independent sanity bound in tests (deterministic service waits are
stochastically smaller than exponential ones at equal utilisation); and (ii)
the M/G/1 Pollaczek-Khinchine means let users explore how service-time
variability would shift the paper's mean-delay conclusions — one of the
ablations DESIGN.md calls out.
"""

from __future__ import annotations

import math

from repro.errors import QueueingError
__all__ = ["MM1Queue", "MG1Queue"]


class MM1Queue:
    """M/M/1 queue: Poisson arrivals, exponential service."""

    def __init__(self, arrival_rate: float, mean_service_time_s: float) -> None:
        if mean_service_time_s <= 0:
            raise QueueingError(f"service time must be positive, got {mean_service_time_s}")
        if arrival_rate < 0:
            raise QueueingError(f"arrival rate must be non-negative, got {arrival_rate}")
        if arrival_rate * mean_service_time_s >= 1.0:
            raise QueueingError(
                f"unstable queue: rho = {arrival_rate * mean_service_time_s:.4f} >= 1"
            )
        self._lambda = float(arrival_rate)
        self._s = float(mean_service_time_s)

    @classmethod
    def from_utilisation(cls, utilisation: float, mean_service_time_s: float) -> "MM1Queue":
        """Build the M/M/1 queue achieving a target utilisation."""
        if not 0.0 <= utilisation < 1.0:
            raise QueueingError(f"utilisation must be in [0, 1), got {utilisation}")
        return cls(utilisation / mean_service_time_s, mean_service_time_s)

    @property
    def arrival_rate(self) -> float:
        """Poisson arrival rate (jobs/s)."""
        return self._lambda

    @property
    def mean_service_time_s(self) -> float:
        """Mean (exponential) service time (seconds)."""
        return self._s

    @property
    def utilisation(self) -> float:
        """Server utilisation rho."""
        return self._lambda * self._s

    @property
    def mean_wait_s(self) -> float:
        """Mean queueing delay rho*S/(1-rho)."""
        rho = self.utilisation
        return rho * self._s / (1.0 - rho)

    @property
    def mean_response_s(self) -> float:
        """Mean response time S/(1-rho)."""
        return self._s / (1.0 - self.utilisation)

    def wait_cdf(self, x: float) -> float:
        """P(W <= x) = 1 - rho * exp(-(mu - lambda) x)."""
        if x < 0:
            return 0.0
        mu = 1.0 / self._s
        return 1.0 - self.utilisation * math.exp(-(mu - self._lambda) * x)

    def response_cdf(self, t: float) -> float:
        """P(R <= t): response time is exponential with rate mu - lambda."""
        if t < 0:
            return 0.0
        mu = 1.0 / self._s
        return 1.0 - math.exp(-(mu - self._lambda) * t)

    def response_percentile(self, q: float) -> float:
        """Closed-form response-time percentile."""
        if not 0.0 <= q < 100.0:
            raise QueueingError(f"percentile must be in [0, 100), got {q}")
        mu = 1.0 / self._s
        return -math.log(1.0 - q / 100.0) / (mu - self._lambda)

    def wait_percentile(self, q: float) -> float:
        """Waiting-time percentile (0 below the atom at zero, else closed form)."""
        if not 0.0 <= q < 100.0:
            raise QueueingError(f"percentile must be in [0, 100), got {q}")
        target = q / 100.0
        if target <= 1.0 - self.utilisation:
            return 0.0
        mu = 1.0 / self._s
        return -math.log((1.0 - target) / self.utilisation) / (mu - self._lambda)


class MG1Queue:
    """M/G/1 queue characterised by mean service time and its SCV.

    The squared coefficient of variation (SCV) interpolates between the
    paper's M/D/1 (SCV = 0) and M/M/1 (SCV = 1).  Means come from the
    Pollaczek-Khinchine formula; full distributions are not available in
    closed form for general service, so percentile queries are delegated to
    the caller (use :class:`~repro.queueing.des.QueueSimulator`).
    """

    def __init__(
        self, arrival_rate: float, mean_service_time_s: float, scv: float
    ) -> None:
        if mean_service_time_s <= 0:
            raise QueueingError(f"service time must be positive, got {mean_service_time_s}")
        if arrival_rate < 0:
            raise QueueingError(f"arrival rate must be non-negative, got {arrival_rate}")
        if scv < 0:
            raise QueueingError(f"SCV must be non-negative, got {scv}")
        if arrival_rate * mean_service_time_s >= 1.0:
            raise QueueingError(
                f"unstable queue: rho = {arrival_rate * mean_service_time_s:.4f} >= 1"
            )
        self._lambda = float(arrival_rate)
        self._s = float(mean_service_time_s)
        self._scv = float(scv)

    @property
    def arrival_rate(self) -> float:
        """Poisson arrival rate (jobs/s)."""
        return self._lambda

    @property
    def mean_service_time_s(self) -> float:
        """Mean service time (seconds)."""
        return self._s

    @property
    def scv(self) -> float:
        """Squared coefficient of variation of the service time."""
        return self._scv

    @property
    def utilisation(self) -> float:
        """Server utilisation rho."""
        return self._lambda * self._s

    @property
    def mean_wait_s(self) -> float:
        """Pollaczek-Khinchine mean delay rho*S*(1+SCV) / (2(1-rho))."""
        rho = self.utilisation
        return rho * self._s * (1.0 + self._scv) / (2.0 * (1.0 - rho))

    @property
    def mean_response_s(self) -> float:
        """Mean response time E[W] + S."""
        return self.mean_wait_s + self._s

    @property
    def mean_queue_length(self) -> float:
        """Mean number waiting (Little's law)."""
        return self._lambda * self.mean_wait_s
