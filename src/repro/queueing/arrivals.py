"""Arrival processes for the dispatcher simulation.

The paper's dispatcher receives jobs "with inter-arrival time exponentially
distributed with parameter lambda_job" (Section II-B) — a Poisson process.
A deterministic process is provided for pinning DES behaviour in tests, and
a batch process models the paper's "multiple jobs per batch" utilisation
sweeps (Section II-C).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import QueueingError

__all__ = ["ArrivalProcess", "PoissonArrivals", "DeterministicArrivals", "BatchArrivals"]


class ArrivalProcess(abc.ABC):
    """A stream of job arrival times (seconds, strictly ordered)."""

    @abc.abstractmethod
    def arrival_times(self, horizon_s: float) -> np.ndarray:
        """All arrival times in [0, horizon_s), ascending."""

    def first_n(self, n: int) -> Optional[np.ndarray]:
        """The first ``n`` arrival times, or None if unsupported.

        Implementations must consume an amount of randomness that is a pure
        function of ``n`` — never of a horizon guess — so that
        :meth:`repro.queueing.des.QueueSimulator.run_jobs` is deterministic
        for a given seed and job count.  The base class returns None;
        callers then fall back to horizon growth.
        """
        return None

    @staticmethod
    def _check_horizon(horizon_s: float) -> None:
        if horizon_s <= 0:
            raise QueueingError(f"horizon must be positive, got {horizon_s}")

    @staticmethod
    def _check_count(n: int) -> None:
        if n <= 0:
            raise QueueingError(f"arrival count must be positive, got {n}")


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals with rate ``rate`` (jobs/s)."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if rate <= 0:
            raise QueueingError(f"arrival rate must be positive, got {rate}")
        self._rate = float(rate)
        self._rng = rng

    @property
    def rate(self) -> float:
        """Arrival rate (jobs/s)."""
        return self._rate

    def arrival_times(self, horizon_s: float) -> np.ndarray:
        self._check_horizon(horizon_s)
        # Draw in chunks: expected count + 6 sigma covers the horizon almost
        # surely; top up in the rare tail case.
        expected = self._rate * horizon_s
        chunk = int(expected + 6.0 * np.sqrt(expected) + 16)
        times: list[np.ndarray] = []
        t_last = 0.0
        while True:
            gaps = self._rng.exponential(1.0 / self._rate, size=chunk)
            ts = t_last + np.cumsum(gaps)
            times.append(ts)
            t_last = float(ts[-1])
            if t_last >= horizon_s:
                break
        all_times = np.concatenate(times)
        return all_times[all_times < horizon_s]

    def first_n(self, n: int) -> np.ndarray:
        """The first ``n`` arrivals: one batch of ``n`` exponential gaps."""
        self._check_count(n)
        return np.cumsum(self._rng.exponential(1.0 / self._rate, size=n))


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals with period ``1/rate``; first at ``offset``."""

    def __init__(self, rate: float, offset_s: float = 0.0) -> None:
        if rate <= 0:
            raise QueueingError(f"arrival rate must be positive, got {rate}")
        if offset_s < 0:
            raise QueueingError(f"offset must be non-negative, got {offset_s}")
        self._rate = float(rate)
        self._offset = float(offset_s)

    @property
    def rate(self) -> float:
        """Arrival rate (jobs/s)."""
        return self._rate

    def arrival_times(self, horizon_s: float) -> np.ndarray:
        self._check_horizon(horizon_s)
        period = 1.0 / self._rate
        if self._offset >= horizon_s:
            return np.empty(0)
        n = int(np.floor((horizon_s - self._offset) / period)) + 1
        times = self._offset + period * np.arange(n)
        return times[times < horizon_s]  # the horizon itself is exclusive

    def first_n(self, n: int) -> np.ndarray:
        """The first ``n`` evenly spaced arrivals."""
        self._check_count(n)
        return self._offset + np.arange(n) / self._rate


class BatchArrivals(ArrivalProcess):
    """Batches of ``batch_size`` simultaneous jobs at Poisson epochs.

    Models the paper's utilisation sweeps, which vary "the number of jobs
    per batch and number of batches in an observation interval".
    """

    def __init__(
        self, batch_rate: float, batch_size: int, rng: np.random.Generator
    ) -> None:
        if batch_size <= 0:
            raise QueueingError(f"batch size must be positive, got {batch_size}")
        self._inner = PoissonArrivals(batch_rate, rng)
        self._batch_size = int(batch_size)

    @property
    def rate(self) -> float:
        """Effective job arrival rate (jobs/s)."""
        return self._inner.rate * self._batch_size

    @property
    def batch_size(self) -> int:
        """Jobs per batch."""
        return self._batch_size

    def arrival_times(self, horizon_s: float) -> np.ndarray:
        epochs = self._inner.arrival_times(horizon_s)
        return np.repeat(epochs, self._batch_size)

    def first_n(self, n: int) -> np.ndarray:
        """The first ``n`` jobs: ceil(n / batch_size) epochs, truncated.

        Randomness consumption depends only on ``n`` (the epoch count is a
        pure function of it).
        """
        self._check_count(n)
        n_epochs = -(-n // self._batch_size)
        epochs = self._inner.first_n(n_epochs)
        return np.repeat(epochs, self._batch_size)[:n]
