"""Arrival processes for the dispatcher simulation.

The paper's dispatcher receives jobs "with inter-arrival time exponentially
distributed with parameter lambda_job" (Section II-B) — a Poisson process.
A deterministic process is provided for pinning DES behaviour in tests, and
a batch process models the paper's "multiple jobs per batch" utilisation
sweeps (Section II-C).

These classes are the *stateful* DES-facing form (they own their
generator); the underlying sampling is delegated to the seeded-stream
specs in :mod:`repro.queueing.processes`, so the DES and the Monte-Carlo
engine draw the same arrival stream from the same seed (the seam
regression in ``tests/queueing/test_processes.py``).
:class:`ProcessArrivals` adapts any :class:`~repro.queueing.processes.ArrivalSpec`
— MMPP, flash-crowd, trace-driven — into this interface.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import QueueingError
from repro.queueing.processes import ArrivalSpec, PoissonProcess

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "BatchArrivals",
    "ProcessArrivals",
]


class ArrivalProcess(abc.ABC):
    """A stream of job arrival times (seconds, strictly ordered)."""

    @abc.abstractmethod
    def arrival_times(self, horizon_s: float) -> np.ndarray:
        """All arrival times in [0, horizon_s), ascending."""

    def first_n(self, n: int) -> Optional[np.ndarray]:
        """The first ``n`` arrival times, or None if unsupported.

        Implementations must consume an amount of randomness that is a pure
        function of ``n`` — never of a horizon guess — so that
        :meth:`repro.queueing.des.QueueSimulator.run_jobs` is deterministic
        for a given seed and job count.  The base class returns None;
        callers then fall back to horizon growth.
        """
        return None

    @staticmethod
    def _check_horizon(horizon_s: float) -> None:
        if horizon_s <= 0:
            raise QueueingError(f"horizon must be positive, got {horizon_s}")

    @staticmethod
    def _check_count(n: int) -> None:
        if n <= 0:
            raise QueueingError(f"arrival count must be positive, got {n}")


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals with rate ``rate`` (jobs/s).

    Sampling delegates to :class:`repro.queueing.processes.PoissonProcess`
    — the exact stream the MC engine consumes, so the same seed yields
    the same arrivals through either path (``rng.exponential(scale, n)``
    and ``standard_exponential(n) * scale`` are the same ziggurat draws).
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self._process = PoissonProcess(rate)
        self._rng = rng

    @property
    def rate(self) -> float:
        """Arrival rate (jobs/s)."""
        return self._process.rate

    def arrival_times(self, horizon_s: float) -> np.ndarray:
        self._check_horizon(horizon_s)
        # Draw in chunks: expected count + 6 sigma covers the horizon almost
        # surely; top up in the rare tail case.
        expected = self.rate * horizon_s
        chunk = int(expected + 6.0 * np.sqrt(expected) + 16)
        times: list[np.ndarray] = []
        t_last = 0.0
        while True:
            ts = t_last + self._process.sample_arrivals(self._rng, chunk)
            times.append(ts)
            t_last = float(ts[-1])
            if t_last >= horizon_s:
                break
        all_times = np.concatenate(times)
        return all_times[all_times < horizon_s]

    def first_n(self, n: int) -> np.ndarray:
        """The first ``n`` arrivals: one batch of ``n`` exponential gaps."""
        self._check_count(n)
        return self._process.sample_arrivals(self._rng, n)


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals with period ``1/rate``; first at ``offset``."""

    def __init__(self, rate: float, offset_s: float = 0.0) -> None:
        if rate <= 0:
            raise QueueingError(f"arrival rate must be positive, got {rate}")
        if offset_s < 0:
            raise QueueingError(f"offset must be non-negative, got {offset_s}")
        self._rate = float(rate)
        self._offset = float(offset_s)

    @property
    def rate(self) -> float:
        """Arrival rate (jobs/s)."""
        return self._rate

    def arrival_times(self, horizon_s: float) -> np.ndarray:
        self._check_horizon(horizon_s)
        period = 1.0 / self._rate
        if self._offset >= horizon_s:
            return np.empty(0)
        n = int(np.floor((horizon_s - self._offset) / period)) + 1
        times = self._offset + period * np.arange(n)
        return times[times < horizon_s]  # the horizon itself is exclusive

    def first_n(self, n: int) -> np.ndarray:
        """The first ``n`` evenly spaced arrivals."""
        self._check_count(n)
        return self._offset + np.arange(n) / self._rate


class BatchArrivals(ArrivalProcess):
    """Batches of ``batch_size`` simultaneous jobs at Poisson epochs.

    Models the paper's utilisation sweeps, which vary "the number of jobs
    per batch and number of batches in an observation interval".
    """

    def __init__(
        self, batch_rate: float, batch_size: int, rng: np.random.Generator
    ) -> None:
        if batch_size <= 0:
            raise QueueingError(f"batch size must be positive, got {batch_size}")
        self._inner = PoissonArrivals(batch_rate, rng)
        self._batch_size = int(batch_size)

    @property
    def rate(self) -> float:
        """Effective job arrival rate (jobs/s)."""
        return self._inner.rate * self._batch_size

    @property
    def batch_size(self) -> int:
        """Jobs per batch."""
        return self._batch_size

    def arrival_times(self, horizon_s: float) -> np.ndarray:
        epochs = self._inner.arrival_times(horizon_s)
        return np.repeat(epochs, self._batch_size)

    def first_n(self, n: int) -> np.ndarray:
        """The first ``n`` jobs: ceil(n / batch_size) epochs, truncated.

        Randomness consumption depends only on ``n`` (the epoch count is a
        pure function of it).
        """
        self._check_count(n)
        n_epochs = -(-n // self._batch_size)
        epochs = self._inner.first_n(n_epochs)
        return np.repeat(epochs, self._batch_size)[:n]


class ProcessArrivals(ArrivalProcess):
    """Any seeded-stream :class:`~repro.queueing.processes.ArrivalSpec`
    (MMPP, flash-crowd, trace-driven, ...) as a DES arrival process.

    ``first_n`` is exact and honours rule S2 (the spec's draw budget is
    a pure function of ``n``).  ``arrival_times`` draws one fresh batch
    sized to cover the horizon, doubling the batch in the rare tail
    case; each call is an independent realisation of the process
    restricted to the horizon, like :meth:`PoissonArrivals.arrival_times`.
    """

    def __init__(self, spec: ArrivalSpec, rng: np.random.Generator) -> None:
        if not isinstance(spec, ArrivalSpec):
            raise QueueingError(
                f"need an ArrivalSpec, got {type(spec).__name__}"
            )
        self._spec = spec
        self._rng = rng

    @property
    def rate(self) -> float:
        """Long-run mean arrival rate (jobs/s)."""
        return self._spec.rate

    @property
    def spec(self) -> ArrivalSpec:
        """The wrapped seeded-stream process."""
        return self._spec

    def arrival_times(self, horizon_s: float) -> np.ndarray:
        self._check_horizon(horizon_s)
        expected = self._spec.rate * horizon_s
        n = int(expected + 6.0 * np.sqrt(expected) + 16)
        for _ in range(64):
            times = self._spec.sample_arrivals(self._rng, n)
            if float(times[-1]) >= horizon_s:
                return times[times < horizon_s]
            n *= 2
        raise QueueingError(
            f"arrival process {self._spec.label} failed to cover a "
            f"{horizon_s:.3g} s horizon"
        )

    def first_n(self, n: int) -> np.ndarray:
        """The first ``n`` arrivals — one exact batch from the spec."""
        self._check_count(n)
        return self._spec.sample_arrivals(self._rng, n)
