"""Analytic M/D/1 queue.

The paper models job arrivals to the cluster dispatcher as Poisson with rate
``lambda_job`` and job service as deterministic at the configuration's
execution time T_P, i.e. an M/D/1 queue with utilisation ``U = T_P *
lambda_job`` (Section II-B).  The dispatcher releases a job only when all
previous jobs have been serviced, so the *whole cluster* is the single
server.

Beyond the textbook means, the paper's Figures 11 and 12 need the full
waiting-time distribution to extract 95th-percentile response times.  We use
Franx's solution (G. J. Franx, "A simple solution for the M/D/c waiting time
distribution", 2001), specialised to c = 1: for x in [(k-1)D, kD),

    P(W <= x) = exp(-y) * sum_{j=0}^{k-1} Q_{k-1-j} * y^j / j!,
    y = lambda * (k*D - x),

where ``Q_n`` is the stationary CDF of the *queue length* (customers
waiting, excluding the one in service).  All series terms are positive, so
unlike the classic Crommelin alternating series this is numerically stable
at high utilisation.  The queue-length distribution itself comes from the
standard embedded M/G/1 chain recursion with Poisson(lambda*D) arrivals per
service.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import QueueingError
from repro.util.numerics import bisect_increasing

__all__ = ["MD1Queue"]

#: Truncation threshold for the stationary distribution: indices are grown
#: until the tail mass drops below this.
_TAIL_EPS = 1e-14

#: Hard cap on the number of stationary probabilities we will compute; at
#: rho = 0.999 the distribution needs ~O(1/(1-rho)) terms, and beyond this
#: cap the caller is asking for percentiles of an effectively unstable queue.
_MAX_TERMS = 2_000_000


class MD1Queue:
    """M/D/1 queue with deterministic service time ``service_time_s``.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda`` (jobs per second).  Must satisfy
        ``lambda * D < 1`` for stationarity.
    service_time_s:
        Deterministic service time ``D`` (seconds) — the model's T_P.
    """

    def __init__(self, arrival_rate: float, service_time_s: float) -> None:
        if service_time_s <= 0:
            raise QueueingError(f"service time must be positive, got {service_time_s}")
        if arrival_rate < 0:
            raise QueueingError(f"arrival rate must be non-negative, got {arrival_rate}")
        rho = arrival_rate * service_time_s
        if rho >= 1.0:
            raise QueueingError(
                f"unstable queue: utilisation rho = {rho:.4f} >= 1 "
                f"(lambda = {arrival_rate}, D = {service_time_s})"
            )
        self._lambda = float(arrival_rate)
        self._d = float(service_time_s)
        # Stationary system-size probabilities pi_0..pi_n, grown on demand.
        self._pi: List[float] = []
        self._pi_cum: List[float] = []
        # Poisson(lambda*D) pmf values a_0..a_{len-1}, grown incrementally
        # alongside the recursion (each index is computed exactly once).
        self._a: List[float] = []

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_utilisation(cls, utilisation: float, service_time_s: float) -> "MD1Queue":
        """Build the queue that achieves a target utilisation.

        This inverts the paper's ``U = T_P * lambda_job``: the figures sweep
        utilisation, and the arrival rate follows.
        """
        if not 0.0 <= utilisation < 1.0:
            raise QueueingError(f"utilisation must be in [0, 1), got {utilisation}")
        return cls(arrival_rate=utilisation / service_time_s, service_time_s=service_time_s)

    # ------------------------------------------------------------------
    # Basic quantities
    # ------------------------------------------------------------------
    @property
    def arrival_rate(self) -> float:
        """Poisson arrival rate (jobs/s)."""
        return self._lambda

    @property
    def service_time_s(self) -> float:
        """Deterministic service time D (seconds)."""
        return self._d

    @property
    def utilisation(self) -> float:
        """Server utilisation rho = lambda * D."""
        return self._lambda * self._d

    @property
    def mean_wait_s(self) -> float:
        """Mean queueing delay E[W] = rho*D / (2(1-rho)) (Pollaczek-Khinchine
        with zero service variability)."""
        rho = self.utilisation
        return rho * self._d / (2.0 * (1.0 - rho))

    @property
    def mean_response_s(self) -> float:
        """Mean response (sojourn) time E[R] = E[W] + D."""
        return self.mean_wait_s + self._d

    @property
    def mean_queue_length(self) -> float:
        """Mean number waiting, L_q = lambda * E[W] (Little's law)."""
        return self._lambda * self.mean_wait_s

    @property
    def mean_number_in_system(self) -> float:
        """Mean number in system, L = lambda * E[R] (Little's law)."""
        return self._lambda * self.mean_response_s

    # ------------------------------------------------------------------
    # Stationary system-size distribution (embedded M/G/1 chain; equals the
    # time-stationary distribution by PASTA).
    # ------------------------------------------------------------------
    def _poisson_pmf(self, j: int) -> float:
        mu = self.utilisation  # mean arrivals during one service = lambda*D
        return math.exp(j * math.log(mu) - mu - math.lgamma(j + 1)) if mu > 0 else (1.0 if j == 0 else 0.0)

    def _grow_a(self, n: int) -> None:
        """Ensure Poisson pmf values a_0..a_{n-1} are cached.

        The pmf list is extended incrementally — never rebuilt — so repeated
        ``wait_cdf``/``wait_percentile`` calls at high utilisation pay O(new
        terms), not O(all terms), on top of the recursion itself.
        """
        while len(self._a) < n:
            self._a.append(self._poisson_pmf(len(self._a)))

    def _grow_pi(self, n: int) -> None:
        """Ensure stationary probabilities pi_0..pi_n are computed."""
        if n < len(self._pi):
            return
        if n > _MAX_TERMS:
            raise QueueingError(
                f"queue-length distribution needs more than {_MAX_TERMS} terms; "
                f"utilisation {self.utilisation:.6f} is too close to 1"
            )
        rho = self.utilisation
        if not self._pi:
            self._pi = [1.0 - rho]
            self._pi_cum = [1.0 - rho]
        self._grow_a(n + 2)
        a = self._a
        pi = self._pi
        while len(pi) <= n:
            m = len(pi)  # computing pi_m
            if m == 1:
                value = pi[0] * (1.0 - a[0]) / a[0]
            else:
                # Balance: pi_{j} = pi_0 a_j + sum_{k=1}^{j} pi_k a_{j-k+1}
                #                    + pi_{j+1} a_0, solved for pi_{j+1}.
                j = m - 1
                acc = pi[j] - pi[0] * a[j]
                for k in range(1, j + 1):
                    acc -= pi[k] * a[j + 1 - k]
                value = acc / a[0]
            # The recursion is exact in exact arithmetic; clip the tiny
            # negative round-off that appears deep in the tail.
            pi.append(max(value, 0.0))
            self._pi_cum.append(min(self._pi_cum[-1] + pi[-1], 1.0))

    def system_size_pmf(self, n: int) -> float:
        """Stationary probability of exactly ``n`` customers in the system."""
        if n < 0:
            raise QueueingError(f"system size must be non-negative, got {n}")
        self._grow_pi(n)
        return self._pi[n]

    def system_size_cdf(self, n: int) -> float:
        """Stationary probability of at most ``n`` customers in the system."""
        if n < 0:
            return 0.0
        self._grow_pi(n)
        return self._pi_cum[n]

    def queue_length_cdf(self, n: int) -> float:
        """Stationary probability of at most ``n`` customers *waiting*.

        ``L_q = max(0, L - 1)``, so ``P(L_q <= n) = P(L <= n + 1)`` — the
        ``Q_n`` of Franx's formula.
        """
        if n < 0:
            return 0.0
        return self.system_size_cdf(n + 1)

    # ------------------------------------------------------------------
    # Waiting-time and response-time distributions
    # ------------------------------------------------------------------
    def wait_cdf(self, x: float) -> float:
        """P(W <= x): probability the queueing delay is at most ``x``.

        Franx's positive-term series; exact up to the stationary-distribution
        truncation, stable for utilisations arbitrarily close to 1.
        """
        if x < 0:
            return 0.0
        if self._lambda == 0.0:
            return 1.0
        d = self._d
        k = int(math.floor(x / d)) + 1  # x in [(k-1)D, kD)
        y = self._lambda * (k * d - x)  # in (0, lambda*D]
        self._grow_pi(k)  # Q_{k-1} needs pi up to index k
        # sum_{j=0}^{k-1} Q_{k-1-j} y^j / j!, accumulated with a running
        # Poisson weight to avoid overflow.
        log_weight = -y  # log of y^0/0! * exp(-y)
        total = 0.0
        log_y = math.log(y) if y > 0 else -math.inf
        for j in range(k):
            q = self.queue_length_cdf(k - 1 - j)
            if q > 0.0 and log_weight > -745.0:  # exp underflow floor
                total += q * math.exp(log_weight)
            log_weight += log_y - math.log(j + 1)
        return min(total, 1.0)

    def response_cdf(self, t: float) -> float:
        """P(R <= t) for the response time R = W + D."""
        return self.wait_cdf(t - self._d)

    def wait_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the queueing delay W."""
        if not 0.0 <= q < 100.0:
            raise QueueingError(f"percentile must be in [0, 100), got {q}")
        target = q / 100.0
        if self.wait_cdf(0.0) >= target:
            return 0.0
        # Grow the bracket geometrically from the mean-based scale.
        hi = max(self.mean_wait_s * 4.0, self._d)
        for _ in range(200):
            if self.wait_cdf(hi) >= target:
                break
            hi *= 2.0
        else:  # pragma: no cover - defensive; CDF -> 1 guarantees exit
            raise QueueingError(f"failed to bracket the {q}th wait percentile")
        return bisect_increasing(self.wait_cdf, target, 0.0, hi, tol=1e-12)

    def response_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the response time R = W + D."""
        return self.wait_percentile(q) + self._d

    def p95_response_s(self) -> float:
        """95th-percentile response time — the paper's Figures 11/12 metric."""
        return self.response_percentile(95.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MD1Queue(lambda={self._lambda:.6g}/s, D={self._d:.6g}s, "
            f"rho={self.utilisation:.4f})"
        )
