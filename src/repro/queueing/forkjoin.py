"""Fork-join dispatch simulation — the scale-out job structure, explicitly.

The paper's M/D/1 dispatcher abstracts a cluster-wide parallel job as ONE
deterministic service.  Physically (its Figure 3), each job forks into one
chunk per leaf node and joins when the slowest chunk finishes.  With the
paper's equal-finish work division and perfectly regular programs the two
views coincide: every chunk takes exactly T_P, all per-node queues see the
same arrivals, and the join adds nothing.

Real programs are not perfectly regular — the testbed's phase traces carry
per-phase noise (``TRACE_VARIABILITY``) — and under fork-join that noise
becomes a *straggler penalty*: the job waits for max of n noisy chunk
times, which grows with the node count.  This simulator quantifies that
penalty, i.e. how far the paper's single-server abstraction can be trusted
for irregular workloads on wide clusters.

Chunk times are lognormal around the job's T_P with coefficient of
variation ``cv``; each node serves its chunks FIFO; a job's response is
``max_i(completion_i) - arrival``.  ``cv = 0`` reduces exactly to M/D/1,
which the tests pin against the analytic solution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import QueueingError
from repro.util.stats import SummaryStats, summarize

__all__ = ["ForkJoinResult", "simulate_fork_join"]


@dataclass(frozen=True)
class ForkJoinResult:
    """Output of one fork-join simulation run."""

    arrivals: np.ndarray
    responses: np.ndarray
    n_nodes: int
    chunk_time_s: float
    cv: float

    @property
    def n_jobs(self) -> int:
        """Number of simulated jobs."""
        return int(len(self.arrivals))

    def response_stats(self) -> SummaryStats:
        """Summary statistics of the job responses."""
        return summarize(self.responses)

    @property
    def p95_response_s(self) -> float:
        """95th-percentile job response time."""
        return float(np.percentile(self.responses, 95))

    @property
    def straggler_factor(self) -> float:
        """Mean response relative to the noise-free chunk time.

        1.0 means the single-server abstraction is exact; the excess is the
        combined queueing + straggler penalty.
        """
        return float(self.responses.mean() / self.chunk_time_s)


def simulate_fork_join(
    *,
    arrival_rate: float,
    chunk_time_s: float,
    n_nodes: int,
    cv: float = 0.0,
    n_jobs: int = 10_000,
    rng: np.random.Generator,
) -> ForkJoinResult:
    """Simulate Poisson job arrivals forking over ``n_nodes`` FIFO queues.

    Parameters
    ----------
    arrival_rate:
        Poisson job arrival rate (jobs/s).  Stability requires
        ``arrival_rate * chunk_time_s < 1`` — every node serves one chunk
        of every job, so each node is itself loaded at the job rate.
    chunk_time_s:
        Mean per-node chunk service time (the model's T_P under equal-finish
        division).
    cv:
        Coefficient of variation of per-chunk service times (lognormal);
        0 gives deterministic chunks and reduces the system to M/D/1.
    """
    if chunk_time_s <= 0:
        raise QueueingError(f"chunk time must be positive, got {chunk_time_s}")
    if n_nodes <= 0:
        raise QueueingError(f"n_nodes must be positive, got {n_nodes}")
    if cv < 0:
        raise QueueingError(f"cv must be non-negative, got {cv}")
    if n_jobs <= 0:
        raise QueueingError(f"n_jobs must be positive, got {n_jobs}")
    if arrival_rate <= 0:
        raise QueueingError(f"arrival rate must be positive, got {arrival_rate}")
    if arrival_rate * chunk_time_s >= 1.0:
        raise QueueingError(
            f"unstable fork-join: per-node load {arrival_rate * chunk_time_s:.3f} >= 1"
        )

    gaps = rng.exponential(1.0 / arrival_rate, size=n_jobs)
    arrivals = np.cumsum(gaps)

    if cv > 0:
        sigma = math.sqrt(math.log(1.0 + cv * cv))
        mu = math.log(chunk_time_s) - 0.5 * sigma * sigma
        services = rng.lognormal(mean=mu, sigma=sigma, size=(n_jobs, n_nodes))
    else:
        services = np.full((n_jobs, n_nodes), chunk_time_s)

    # Per-node FIFO recursion, vectorised across nodes; the join is the
    # row-wise maximum of completions.
    free_at = np.zeros(n_nodes)
    responses = np.empty(n_jobs)
    for j in range(n_jobs):
        start = np.maximum(free_at, arrivals[j])
        free_at = start + services[j]
        responses[j] = free_at.max() - arrivals[j]
    return ForkJoinResult(
        arrivals=arrivals,
        responses=responses,
        n_nodes=n_nodes,
        chunk_time_s=chunk_time_s,
        cv=cv,
    )
