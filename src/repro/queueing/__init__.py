"""Queueing substrate: the paper's M/D/1 utilisation model, analytic
companions (M/M/1, M/G/1), a discrete-event FIFO simulator, a vectorized
Monte-Carlo replication engine, and pluggable arrival/service processes
(:mod:`repro.queueing.processes`) behind one seeded-stream protocol."""

from repro.queueing.arrivals import (
    ArrivalProcess,
    BatchArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    ProcessArrivals,
)
from repro.queueing.des import QueueSimulator, SimulationResult
from repro.queueing.forkjoin import ForkJoinResult, simulate_fork_join
from repro.queueing.mc import (
    ConfidenceInterval,
    MonteCarloQueue,
    ReplicatedResult,
    exponential_service,
    lindley_waits,
    scalar_lindley_waits,
    uniform_service,
    waits_agreement,
)
from repro.queueing.md1 import MD1Queue
from repro.queueing.mdc import MDCQueue
from repro.queueing.mg1 import MG1Queue, MM1Queue
from repro.queueing.processes import (
    ArrivalSpec,
    DeterministicService,
    FlashCrowd,
    IntervalArrivals,
    LognormalService,
    MarkovModulatedPoisson,
    ParetoService,
    PoissonProcess,
    ServiceSpec,
    TraceDrivenArrivals,
    make_arrivals,
    make_interval_arrivals,
    make_service,
)

__all__ = [
    "MD1Queue",
    "MDCQueue",
    "MM1Queue",
    "MG1Queue",
    "QueueSimulator",
    "SimulationResult",
    "ForkJoinResult",
    "simulate_fork_join",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "BatchArrivals",
    "ProcessArrivals",
    "MonteCarloQueue",
    "ReplicatedResult",
    "ConfidenceInterval",
    "lindley_waits",
    "scalar_lindley_waits",
    "waits_agreement",
    "exponential_service",
    "uniform_service",
    "ArrivalSpec",
    "ServiceSpec",
    "PoissonProcess",
    "MarkovModulatedPoisson",
    "FlashCrowd",
    "TraceDrivenArrivals",
    "DeterministicService",
    "LognormalService",
    "ParetoService",
    "IntervalArrivals",
    "make_arrivals",
    "make_service",
    "make_interval_arrivals",
]
