"""Pluggable stochastic arrival and service processes.

Every load-bearing statistical claim in this reproduction (the Table 6
PPR winners, the Fig. 9 EP-vs-x264 contrast, the scheduler oracle gap)
was originally derived under Poisson arrivals and deterministic service
— exactly M/D/1.  This module makes the process assumptions a pluggable
axis: arrival and service processes become small picklable objects
behind one *seeded-stream protocol*, consumed by
:class:`repro.queueing.mc.MonteCarloQueue`, :mod:`repro.queueing.des`
and the scheduler trace replay (:mod:`repro.scheduler.engine`), so the
robustness study (:mod:`repro.experiments.robustness`) can re-ask the
paper's questions off the M/D/1 assumption.

The seeded-stream protocol
--------------------------
A process never owns randomness.  It is handed a
:class:`numpy.random.Generator` and draws a batch:

* :class:`ArrivalSpec.sample_arrivals(rng, n)` returns the first ``n``
  arrival times (seconds, non-decreasing, starting after 0);
* :class:`ServiceSpec.__call__(rng, size)` returns ``size`` service
  times — the :data:`repro.queueing.mc.BatchServiceSampler` shape.

Two rules make the plug-ins compose with the replication seeding and
the parallel layer:

* **S2 (horizon independence, extended):** the *number and order* of
  raw draws a process consumes is a pure function of ``n`` — never of
  the values drawn.  PR 2 stated S2 for plain Poisson arrivals; here it
  extends to modulated processes: the MMPP regime chain, the
  flash-crowd episode position and the trace inversion all consume a
  fixed draw budget per batch, so replication ``r`` of an ``n``-job run
  reads the same stream positions no matter which process produced the
  values before it.
* **Arrivals before service:** within one replication the engine draws
  the full arrival batch first, then the full service batch
  (:mod:`repro.queueing.mc`'s contract).  Processes must not interleave.

Both rules together are what keep ``workers in {1, 2, 4}`` runs
bit-identical to serial for *every* process type (pinned by
``tests/properties/test_process_invariants.py``).

Mean matching
-------------
All arrival processes honour a long-run mean rate ``rate`` and all
service processes a mean ``mean_s``, so swapping the process changes
*variability and correlation only* — utilisation, and therefore the
energy accounting, stays comparable across the grid.

Interval arrivals
-----------------
The scheduler engine draws arrivals per replay interval rather than per
job; :class:`IntervalArrivals` is the matching protocol
(:class:`PoissonIntervalArrivals` reproduces the engine's historical
draws bit-for-bit).  These models may carry regime state across
intervals; :meth:`IntervalArrivals.reset` rewinds them at run start so
a scheduler replay stays a pure function of its seed.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import QueueingError
from repro.queueing.mc import ExponentialService as _BaseExponentialService

__all__ = [
    "ARRIVAL_KINDS",
    "SERVICE_KINDS",
    "INTERVAL_ARRIVAL_KINDS",
    "ArrivalSpec",
    "ServiceSpec",
    "PoissonProcess",
    "MarkovModulatedPoisson",
    "FlashCrowd",
    "TraceDrivenArrivals",
    "DeterministicService",
    "ExponentialService",
    "ParetoService",
    "LognormalService",
    "IntervalArrivals",
    "PoissonIntervalArrivals",
    "ModulatedIntervalArrivals",
    "FlashIntervalArrivals",
    "make_arrivals",
    "make_service",
    "make_interval_arrivals",
]

#: Arrival process kinds of the robustness grid, in report order.
ARRIVAL_KINDS = ("poisson", "mmpp", "flash-crowd", "diurnal")

#: Service process kinds of the robustness grid, in report order.
SERVICE_KINDS = ("deterministic", "exponential", "lognormal", "pareto")

#: Interval-level arrival models the scheduler engine understands.
INTERVAL_ARRIVAL_KINDS = ("poisson", "mmpp", "flash-crowd")

_EMPTY = np.empty(0)


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------
class ArrivalSpec(abc.ABC):
    """A seeded-stream arrival process.

    Concrete processes expose a ``rate`` attribute (the long-run mean
    arrival rate in jobs/s) and draw batches of arrival times from a
    generator they are handed.  Draw consumption must be a pure
    function of ``n`` (rule S2 above).
    """

    __slots__ = ()

    @abc.abstractmethod
    def sample_arrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """The first ``n`` arrival times (seconds, non-decreasing)."""

    def poisson_rate(self) -> Optional[float]:
        """The rate if this process is exactly homogeneous Poisson.

        Engines with a preallocated-buffer Poisson fast path (the MC
        hot loop) use this to take it without losing bit-identity; the
        fast path must consume randomness exactly as
        :meth:`PoissonProcess.sample_arrivals` does.
        """
        return None

    @property
    def label(self) -> str:
        """Short kebab-case name for grids and reports."""
        return type(self).__name__


class ServiceSpec(abc.ABC):
    """A seeded-stream service process — a picklable
    :data:`repro.queueing.mc.BatchServiceSampler` with matched-mean
    metadata.

    Concrete processes expose ``mean_s`` (the mean service time) and
    :attr:`scv` (squared coefficient of variation); ``fixed_s`` is
    non-None only for deterministic service, letting the MC engine keep
    its exact closed-form M/D/1 reductions.
    """

    __slots__ = ()

    @abc.abstractmethod
    def __call__(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` service times (seconds, positive)."""

    @property
    @abc.abstractmethod
    def scv(self) -> float:
        """Squared coefficient of variation (``inf`` for alpha <= 2 Pareto)."""

    @property
    def fixed_s(self) -> Optional[float]:
        """The deterministic service time, or None for random service."""
        return None

    @property
    def label(self) -> str:
        """Short kebab-case name for grids and reports."""
        return type(self).__name__


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class PoissonProcess(ArrivalSpec):
    """Homogeneous Poisson arrivals — the paper's baseline.

    Consumes exactly ``n`` standard exponentials per batch and scales
    by ``1/rate``, matching the MC engine's historical in-place draws
    bit-for-bit (pinned by ``tests/queueing/test_processes.py``).
    """

    __slots__ = ("rate",)

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise QueueingError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)

    def sample_arrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        gaps = rng.standard_exponential(n)
        np.multiply(gaps, 1.0 / self.rate, out=gaps)
        return np.cumsum(gaps)

    def poisson_rate(self) -> Optional[float]:
        return self.rate

    @property
    def label(self) -> str:
        return "poisson"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PoissonProcess(rate={self.rate!r})"


class MarkovModulatedPoisson(ArrivalSpec):
    """Bursty arrivals: a two-state Markov-modulated Poisson process.

    A hidden regime chain indexed by *arrival* toggles between a quiet
    state (rate ``base/burstiness``) and a bursty state (rate
    ``base * burstiness``); ``persistence`` is the probability the
    regime survives one arrival, so runs of ``~1/(1-persistence)``
    correlated gaps alternate with opposite-tempo runs.  The base rate
    is chosen so the stationary mean gap is exactly ``1/rate``
    (``base = rate * (b + 1/b) / 2`` with equal regime occupancy).

    Draw budget per batch of ``n``: ``n`` uniforms (regime chain, the
    first doubling as the stationary initial state) then ``n`` standard
    exponentials — a pure function of ``n`` (rule S2).
    """

    __slots__ = ("rate", "burstiness", "persistence", "_rate_lo", "_rate_hi")

    def __init__(
        self, rate: float, *, burstiness: float = 4.0, persistence: float = 0.9
    ) -> None:
        if rate <= 0:
            raise QueueingError(f"arrival rate must be positive, got {rate}")
        if burstiness < 1.0:
            raise QueueingError(
                f"burstiness must be >= 1, got {burstiness}"
            )
        if not 0.0 <= persistence < 1.0:
            raise QueueingError(
                f"persistence must be in [0, 1), got {persistence}"
            )
        self.rate = float(rate)
        self.burstiness = float(burstiness)
        self.persistence = float(persistence)
        base = self.rate * (self.burstiness + 1.0 / self.burstiness) / 2.0
        self._rate_lo = base / self.burstiness
        self._rate_hi = base * self.burstiness

    @property
    def regime_rates(self) -> tuple:
        """(quiet, bursty) regime rates; their harmonic mean is ``rate``."""
        return (self._rate_lo, self._rate_hi)

    def sample_arrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(n)
        e = rng.standard_exponential(n)
        # toggles[0] seeds the chain from its (uniform) stationary law;
        # later entries flip the regime with probability 1 - persistence.
        toggles = u >= self.persistence
        if n:
            toggles[0] = u[0] < 0.5
        bursty = np.logical_xor.accumulate(toggles)
        gaps = e / np.where(bursty, self._rate_hi, self._rate_lo)
        return np.cumsum(gaps)

    @property
    def label(self) -> str:
        return "mmpp"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MarkovModulatedPoisson(rate={self.rate!r}, "
            f"burstiness={self.burstiness!r}, persistence={self.persistence!r})"
        )


class FlashCrowd(ArrivalSpec):
    """Poisson arrivals with one contiguous flash-crowd episode.

    A fraction ``spike_fraction`` of each batch's arrivals lands in a
    single episode whose gaps shrink by ``spike_factor``; the episode
    position is drawn uniformly over the batch.  The base rate is
    ``rate * ((1 - f) + f / s)`` so the long-run mean rate stays
    ``rate``.  Draw budget per batch of ``n``: one uniform (episode
    position) then ``n`` standard exponentials.
    """

    __slots__ = ("rate", "spike_factor", "spike_fraction", "_base_rate")

    def __init__(
        self, rate: float, *, spike_factor: float = 8.0, spike_fraction: float = 0.08
    ) -> None:
        if rate <= 0:
            raise QueueingError(f"arrival rate must be positive, got {rate}")
        if spike_factor < 1.0:
            raise QueueingError(
                f"spike factor must be >= 1, got {spike_factor}"
            )
        if not 0.0 <= spike_fraction < 1.0:
            raise QueueingError(
                f"spike fraction must be in [0, 1), got {spike_fraction}"
            )
        self.rate = float(rate)
        self.spike_factor = float(spike_factor)
        self.spike_fraction = float(spike_fraction)
        self._base_rate = self.rate * (
            (1.0 - self.spike_fraction) + self.spike_fraction / self.spike_factor
        )

    def sample_arrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = float(rng.random())
        gaps = rng.standard_exponential(n)
        np.multiply(gaps, 1.0 / self._base_rate, out=gaps)
        width = int(round(self.spike_fraction * n))
        if width:
            start = min(int(u * (n - width + 1)), n - width)
            gaps[start : start + width] /= self.spike_factor
        return np.cumsum(gaps)

    @property
    def label(self) -> str:
        return "flash-crowd"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlashCrowd(rate={self.rate!r}, spike_factor={self.spike_factor!r}, "
            f"spike_fraction={self.spike_fraction!r})"
        )


class TraceDrivenArrivals(ArrivalSpec):
    """Inhomogeneous Poisson arrivals driven by a periodic demand trace.

    The trace gives relative intensity per interval; it is normalised
    by its mean so the long-run rate is exactly ``rate``, and repeated
    periodically so any batch length is defined (rule S2: exactly ``n``
    standard exponentials per batch).  Sampling inverts the piecewise
    linear cumulative intensity ``Lambda`` at unit-rate Poisson epochs.
    """

    __slots__ = (
        "rate",
        "trace",
        "interval_s",
        "_lambdas",
        "_cum",
        "_period_s",
        "_period_intensity",
    )

    def __init__(
        self, rate: float, trace: Sequence[float], *, interval_s: float = 60.0
    ) -> None:
        if rate <= 0:
            raise QueueingError(f"arrival rate must be positive, got {rate}")
        if interval_s <= 0:
            raise QueueingError(
                f"trace interval must be positive, got {interval_s}"
            )
        arr = np.asarray(trace, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise QueueingError("trace must be a non-empty 1-D sequence")
        if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
            raise QueueingError("trace intensities must be positive and finite")
        self.rate = float(rate)
        self.trace = arr.copy()
        self.interval_s = float(interval_s)
        self._lambdas = self.rate * arr / arr.mean()
        self._cum = np.concatenate(
            ([0.0], np.cumsum(self._lambdas * self.interval_s))
        )
        self._period_s = arr.size * self.interval_s
        self._period_intensity = float(self._cum[-1])

    @classmethod
    def diurnal(
        cls,
        rate: float,
        *,
        n_intervals: int = 24,
        interval_s: float = 60.0,
        rng: Optional[np.random.Generator] = None,
        noise: float = 0.0,
        **trace_kwargs: float,
    ) -> "TraceDrivenArrivals":
        """Arrivals modulated by the scheduler's diurnal demand curve.

        Built through :func:`repro.extensions.dynamic.diurnal_trace` —
        the *same* generator the scheduler replay uses — so the MC and
        scheduler paths share one trace per seed (the seam regression in
        ``tests/queueing/test_processes.py``).
        """
        from repro.extensions.dynamic import diurnal_trace

        trace = diurnal_trace(
            n_intervals=n_intervals, rng=rng, noise=noise, **trace_kwargs
        )
        return cls(rate, trace, interval_s=interval_s)

    def sample_arrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        epochs = np.cumsum(rng.standard_exponential(n))
        cycles = np.floor(epochs / self._period_intensity)
        rem = epochs - cycles * self._period_intensity
        k = np.searchsorted(self._cum, rem, side="right") - 1
        np.clip(k, 0, self._lambdas.size - 1, out=k)
        return (
            cycles * self._period_s
            + k * self.interval_s
            + (rem - self._cum[k]) / self._lambdas[k]
        )

    @property
    def label(self) -> str:
        return "diurnal"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceDrivenArrivals(rate={self.rate!r}, "
            f"n_intervals={self.trace.size}, interval_s={self.interval_s!r})"
        )


# ----------------------------------------------------------------------
# Service processes
# ----------------------------------------------------------------------
class DeterministicService(ServiceSpec):
    """Fixed service time — the paper's T_P (M/D/1 service).

    ``fixed_s`` is set, so the MC engine takes its exact deterministic
    reductions (percentile-of-waits + D) and consumes zero service
    draws — identical to passing the bare float.
    """

    __slots__ = ("mean_s",)

    def __init__(self, mean_s: float) -> None:
        if mean_s <= 0:
            raise QueueingError(
                f"mean service time must be positive, got {mean_s}"
            )
        self.mean_s = float(mean_s)

    def __call__(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.mean_s)

    @property
    def scv(self) -> float:
        return 0.0

    @property
    def fixed_s(self) -> Optional[float]:
        return self.mean_s

    @property
    def label(self) -> str:
        return "deterministic"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicService(mean_s={self.mean_s!r})"


class ExponentialService(_BaseExponentialService, ServiceSpec):
    """Exponential service (M/M/1) as a :class:`ServiceSpec`.

    Subclasses the MC engine's sampler, so draws are bit-identical to
    the historical ``exponential_service`` factory."""

    __slots__ = ()

    @property
    def scv(self) -> float:
        return 1.0

    @property
    def label(self) -> str:
        return "exponential"


class ParetoService(ServiceSpec):
    """Heavy-tailed Pareto service with matched mean.

    Classic Pareto with tail index ``alpha > 1`` and scale
    ``x_m = mean_s * (alpha - 1) / alpha`` (so the mean is ``mean_s``),
    drawn by inverse transform from one batch of uniforms.  The tail
    index is recoverable by the Hill estimator
    (:func:`repro.util.stats.hill_tail_index`) — the property suite's
    sanity check.  Variance is infinite for ``alpha <= 2``.
    """

    __slots__ = ("mean_s", "tail_index", "x_m")

    def __init__(self, mean_s: float, *, tail_index: float = 2.2) -> None:
        if mean_s <= 0:
            raise QueueingError(
                f"mean service time must be positive, got {mean_s}"
            )
        if tail_index <= 1.0:
            raise QueueingError(
                f"Pareto tail index must exceed 1 (finite mean), got {tail_index}"
            )
        self.mean_s = float(mean_s)
        self.tail_index = float(tail_index)
        self.x_m = self.mean_s * (self.tail_index - 1.0) / self.tail_index

    def __call__(self, rng: np.random.Generator, size: int) -> np.ndarray:
        # 1 - U in (0, 1]: the inverse CDF stays finite and >= x_m.
        return self.x_m * (1.0 - rng.random(size)) ** (-1.0 / self.tail_index)

    @property
    def scv(self) -> float:
        a = self.tail_index
        if a <= 2.0:
            return math.inf
        return 1.0 / (a * (a - 2.0))

    @property
    def label(self) -> str:
        return "pareto"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParetoService(mean_s={self.mean_s!r}, "
            f"tail_index={self.tail_index!r})"
        )


class LognormalService(ServiceSpec):
    """Heavy-tailed lognormal service with matched mean.

    ``mu = ln(mean_s) - sigma^2 / 2`` so the mean is exactly
    ``mean_s``; ``sigma`` controls the (all-moments-finite) tail:
    ``scv = exp(sigma^2) - 1``.
    """

    __slots__ = ("mean_s", "sigma", "_mu")

    def __init__(self, mean_s: float, *, sigma: float = 0.8) -> None:
        if mean_s <= 0:
            raise QueueingError(
                f"mean service time must be positive, got {mean_s}"
            )
        if sigma <= 0:
            raise QueueingError(f"sigma must be positive, got {sigma}")
        self.mean_s = float(mean_s)
        self.sigma = float(sigma)
        self._mu = math.log(self.mean_s) - 0.5 * self.sigma * self.sigma

    def __call__(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(self._mu, self.sigma, size)

    @property
    def scv(self) -> float:
        return math.exp(self.sigma * self.sigma) - 1.0

    @property
    def label(self) -> str:
        return "lognormal"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LognormalService(mean_s={self.mean_s!r}, sigma={self.sigma!r})"


# ----------------------------------------------------------------------
# Interval-level arrival models (scheduler trace replay)
# ----------------------------------------------------------------------
class IntervalArrivals(abc.ABC):
    """Per-interval arrival model for the scheduler replay engine.

    The engine hands each interval's demand-implied rate ``lam`` and
    the interval bounds; the model returns the sorted arrival times
    within the interval.  Models may carry regime state across
    intervals; :meth:`reset` rewinds it so every replay is a pure
    function of its seed.
    """

    __slots__ = ()

    def reset(self) -> None:
        """Rewind any cross-interval regime state (run start)."""

    @abc.abstractmethod
    def sample_interval(
        self,
        rng: np.random.Generator,
        lam: float,
        interval_s: float,
        t0: float,
        t1: float,
    ) -> np.ndarray:
        """Sorted arrival times in ``[t0, t1)`` at mean rate ``lam``."""

    @property
    def label(self) -> str:
        """Short kebab-case name for reports and ledger params."""
        return type(self).__name__


class PoissonIntervalArrivals(IntervalArrivals):
    """The engine's historical draws: Poisson count, uniform placement.

    Bit-identical to the inline sampling the engine used before the
    protocol existed (count first, uniforms only when the count is
    positive) — pinned by ``tests/scheduler/test_engine_processes.py``.
    """

    __slots__ = ()

    def sample_interval(
        self,
        rng: np.random.Generator,
        lam: float,
        interval_s: float,
        t0: float,
        t1: float,
    ) -> np.ndarray:
        n = int(rng.poisson(lam * interval_s))
        if not n:
            return _EMPTY
        return np.sort(rng.uniform(t0, t1, size=n))

    @property
    def label(self) -> str:
        return "poisson"


class ModulatedIntervalArrivals(IntervalArrivals):
    """Bursty replay demand: a two-state regime chain over intervals.

    Each interval's rate is the demand-implied ``lam`` scaled by a
    quiet (``1/(b*m)``) or bursty (``b/m``) factor with
    ``m = (b + 1/b)/2``, so the expected scale is 1 and the mean served
    demand matches the Poisson replay.  The regime survives an interval
    with probability ``persistence``.  Draw budget per interval: one
    uniform (regime), one Poisson count, then the placement uniforms.
    """

    __slots__ = ("burstiness", "persistence", "_factor_lo", "_factor_hi", "_bursty")

    def __init__(
        self, *, burstiness: float = 4.0, persistence: float = 0.8
    ) -> None:
        if burstiness < 1.0:
            raise QueueingError(
                f"burstiness must be >= 1, got {burstiness}"
            )
        if not 0.0 <= persistence < 1.0:
            raise QueueingError(
                f"persistence must be in [0, 1), got {persistence}"
            )
        self.burstiness = float(burstiness)
        self.persistence = float(persistence)
        m = (self.burstiness + 1.0 / self.burstiness) / 2.0
        self._factor_lo = 1.0 / (self.burstiness * m)
        self._factor_hi = self.burstiness / m
        self._bursty: Optional[bool] = None

    def reset(self) -> None:
        self._bursty = None

    def sample_interval(
        self,
        rng: np.random.Generator,
        lam: float,
        interval_s: float,
        t0: float,
        t1: float,
    ) -> np.ndarray:
        u = float(rng.random())
        if self._bursty is None:
            self._bursty = u < 0.5
        elif u >= self.persistence:
            self._bursty = not self._bursty
        factor = self._factor_hi if self._bursty else self._factor_lo
        n = int(rng.poisson(lam * factor * interval_s))
        if not n:
            return _EMPTY
        return np.sort(rng.uniform(t0, t1, size=n))

    @property
    def label(self) -> str:
        return "mmpp"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModulatedIntervalArrivals(burstiness={self.burstiness!r}, "
            f"persistence={self.persistence!r})"
        )


class FlashIntervalArrivals(IntervalArrivals):
    """Replay demand with random flash-crowd intervals.

    Each interval independently spikes with probability
    ``spike_probability``, scaling its rate by ``spike_factor``; the
    base factor ``1 / (1 - q + q*s)`` keeps the expected scale at 1.
    """

    __slots__ = ("spike_factor", "spike_probability", "_base_factor")

    def __init__(
        self, *, spike_factor: float = 6.0, spike_probability: float = 0.1
    ) -> None:
        if spike_factor < 1.0:
            raise QueueingError(
                f"spike factor must be >= 1, got {spike_factor}"
            )
        if not 0.0 <= spike_probability < 1.0:
            raise QueueingError(
                f"spike probability must be in [0, 1), got {spike_probability}"
            )
        self.spike_factor = float(spike_factor)
        self.spike_probability = float(spike_probability)
        self._base_factor = 1.0 / (
            1.0 - self.spike_probability + self.spike_probability * self.spike_factor
        )

    def sample_interval(
        self,
        rng: np.random.Generator,
        lam: float,
        interval_s: float,
        t0: float,
        t1: float,
    ) -> np.ndarray:
        spike = float(rng.random()) < self.spike_probability
        factor = self._base_factor * (self.spike_factor if spike else 1.0)
        n = int(rng.poisson(lam * factor * interval_s))
        if not n:
            return _EMPTY
        return np.sort(rng.uniform(t0, t1, size=n))

    @property
    def label(self) -> str:
        return "flash-crowd"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlashIntervalArrivals(spike_factor={self.spike_factor!r}, "
            f"spike_probability={self.spike_probability!r})"
        )


# ----------------------------------------------------------------------
# Grid factories
# ----------------------------------------------------------------------
def make_arrivals(kind: str, rate: float) -> ArrivalSpec:
    """An arrival process of the robustness grid at the given mean rate."""
    if kind == "poisson":
        return PoissonProcess(rate)
    if kind == "mmpp":
        return MarkovModulatedPoisson(rate)
    if kind == "flash-crowd":
        return FlashCrowd(rate)
    if kind == "diurnal":
        return TraceDrivenArrivals.diurnal(rate)
    raise QueueingError(
        f"unknown arrival kind {kind!r}; expected one of {ARRIVAL_KINDS}"
    )


def make_service(kind: str, mean_s: float) -> ServiceSpec:
    """A service process of the robustness grid at the given mean.

    ``make_service(kind, 1.0)`` yields the unit-mean multiplier form
    the scheduler engine's ``service_model`` expects.
    """
    if kind == "deterministic":
        return DeterministicService(mean_s)
    if kind == "exponential":
        return ExponentialService(mean_s)
    if kind == "lognormal":
        return LognormalService(mean_s)
    if kind == "pareto":
        return ParetoService(mean_s)
    raise QueueingError(
        f"unknown service kind {kind!r}; expected one of {SERVICE_KINDS}"
    )


def make_interval_arrivals(
    kind: Union[str, IntervalArrivals, None]
) -> IntervalArrivals:
    """An interval arrival model from a kind name (instances pass through)."""
    if kind is None:
        return PoissonIntervalArrivals()
    if isinstance(kind, IntervalArrivals):
        return kind
    if kind == "poisson":
        return PoissonIntervalArrivals()
    if kind == "mmpp":
        return ModulatedIntervalArrivals()
    if kind == "flash-crowd":
        return FlashIntervalArrivals()
    raise QueueingError(
        f"unknown interval arrival kind {kind!r}; "
        f"expected one of {INTERVAL_ARRIVAL_KINDS}"
    )
