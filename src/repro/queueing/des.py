"""Discrete-event simulation of the dispatcher + cluster queue.

The paper's queueing model (Section II-B) treats the whole cluster as one
FIFO server: jobs queue at a dispatcher "until all the previous jobs have
been serviced".  This simulator is the empirical ground truth the analytic
M/D/1 results are property-tested against, and the only way to get
percentiles for general service-time distributions (M/G/1).

The single-server FIFO recursion makes an event calendar unnecessary:

    start_n  = max(arrival_n, completion_{n-1})
    wait_n   = start_n - arrival_n
    completion_n = start_n + service_n

which vectorises poorly (loop-carried dependency) but runs fine for the
sample sizes the tests need; a busy-period bookkeeping pass then yields the
server utilisation and the busy/idle time split used by the energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import QueueingError
from repro.queueing.arrivals import ArrivalProcess, PoissonArrivals
from repro.util.stats import SummaryStats, summarize

__all__ = ["ServiceModel", "QueueSimulator", "SimulationResult"]

#: A service-time sampler: given an RNG, return one service time (seconds).
ServiceModel = Callable[[np.random.Generator], float]


@dataclass(frozen=True)
class SimulationResult:
    """Output of one FIFO-queue simulation run."""

    arrivals: np.ndarray
    waits: np.ndarray
    services: np.ndarray
    horizon_s: float
    n_servers: int = 1

    def __post_init__(self) -> None:
        if not (len(self.arrivals) == len(self.waits) == len(self.services)):
            raise QueueingError("result arrays must have equal length")
        if self.n_servers <= 0:
            raise QueueingError("n_servers must be positive")

    @property
    def n_jobs(self) -> int:
        """Number of jobs that arrived within the horizon."""
        return int(len(self.arrivals))

    @property
    def responses(self) -> np.ndarray:
        """Response (sojourn) times: wait + service."""
        return self.waits + self.services

    @property
    def completions(self) -> np.ndarray:
        """Completion times of every job."""
        return self.arrivals + self.responses

    @property
    def busy_time_s(self) -> float:
        """Total time the server spent serving."""
        return float(np.sum(self.services))

    @property
    def utilisation(self) -> float:
        """Per-server busy fraction over the *observed span*.

        The span runs to the later of the horizon and the last completion so
        that jobs finishing after the horizon do not inflate utilisation
        above one.
        """
        if self.n_jobs == 0:
            return 0.0
        span = max(self.horizon_s, float(np.max(self.completions)))
        return self.busy_time_s / (span * self.n_servers)

    def wait_stats(self) -> SummaryStats:
        """Summary statistics of the queueing delays."""
        return summarize(self.waits)

    def response_stats(self) -> SummaryStats:
        """Summary statistics of the response times."""
        return summarize(self.responses)

    def empirical_wait_cdf(self, x: float) -> float:
        """Empirical P(W <= x)."""
        if self.n_jobs == 0:
            raise QueueingError("no jobs simulated")
        return float(np.mean(self.waits <= x))


class QueueSimulator:
    """Single-server FIFO queue simulator.

    Parameters
    ----------
    arrivals:
        The arrival process (usually :class:`PoissonArrivals`).
    service:
        Either a fixed service time in seconds (deterministic — the paper's
        M/D/1 case) or a :data:`ServiceModel` callable for general service.
    rng:
        Generator used for random service models; may be None for
        deterministic service.
    n_servers:
        Number of parallel servers sharing the FIFO queue (1 reproduces the
        paper's whole-cluster-as-one-server dispatcher; larger values model
        a cluster partitioned into independent job slots).
    """

    def __init__(
        self,
        arrivals: ArrivalProcess,
        service: float | ServiceModel,
        rng: Optional[np.random.Generator] = None,
        *,
        n_servers: int = 1,
    ) -> None:
        if n_servers <= 0:
            raise QueueingError(f"n_servers must be positive, got {n_servers}")
        self._n_servers = int(n_servers)
        self._arrivals = arrivals
        if callable(service):
            if rng is None:
                raise QueueingError("a random service model needs an RNG")
            self._service_model: Optional[ServiceModel] = service
            self._service_fixed = None
        else:
            if service <= 0:
                raise QueueingError(f"service time must be positive, got {service}")
            self._service_model = None
            self._service_fixed = float(service)
        self._rng = rng

    @classmethod
    def md1(
        cls,
        arrival_rate: float,
        service_time_s: float,
        rng: np.random.Generator,
    ) -> "QueueSimulator":
        """Convenience constructor mirroring :class:`~repro.queueing.md1.MD1Queue`."""
        return cls(PoissonArrivals(arrival_rate, rng), service_time_s)

    def run(self, horizon_s: float) -> SimulationResult:
        """Simulate all arrivals in [0, horizon) and serve them to completion."""
        arrivals = self._arrivals.arrival_times(horizon_s)
        n = len(arrivals)
        if n == 0:
            return SimulationResult(
                arrivals=np.empty(0),
                waits=np.empty(0),
                services=np.empty(0),
                horizon_s=horizon_s,
                n_servers=self._n_servers,
            )
        if self._service_fixed is not None:
            services = np.full(n, self._service_fixed)
        else:
            assert self._service_model is not None and self._rng is not None
            services = np.fromiter(
                (self._service_model(self._rng) for _ in range(n)),
                dtype=float,
                count=n,
            )
            if np.any(services <= 0):
                raise QueueingError("service model produced a non-positive time")

        waits = np.empty(n)
        if self._n_servers == 1:
            completion = 0.0
            for i in range(n):
                start = arrivals[i] if arrivals[i] > completion else completion
                waits[i] = start - arrivals[i]
                completion = start + services[i]
        else:
            # Multi-server FIFO: each job takes the earliest-free server.
            import heapq

            free_at = [0.0] * self._n_servers
            heapq.heapify(free_at)
            for i in range(n):
                earliest = heapq.heappop(free_at)
                start = arrivals[i] if arrivals[i] > earliest else earliest
                waits[i] = start - arrivals[i]
                heapq.heappush(free_at, start + services[i])
        return SimulationResult(
            arrivals=arrivals,
            waits=waits,
            services=services,
            horizon_s=horizon_s,
            n_servers=self._n_servers,
        )

    def run_jobs(self, n_jobs: int, horizon_hint_s: Optional[float] = None) -> SimulationResult:
        """Simulate until at least ``n_jobs`` have arrived, then truncate.

        Percentile estimates need a controlled sample size; this keeps
        growing the horizon until the arrival process has produced enough
        jobs, then keeps exactly the first ``n_jobs``.
        """
        if n_jobs <= 0:
            raise QueueingError(f"n_jobs must be positive, got {n_jobs}")
        rate = getattr(self._arrivals, "rate", None)
        horizon = horizon_hint_s or (n_jobs / rate * 1.2 if rate else float(n_jobs))
        for _ in range(64):
            result = self.run(horizon)
            if result.n_jobs >= n_jobs:
                return SimulationResult(
                    arrivals=result.arrivals[:n_jobs],
                    waits=result.waits[:n_jobs],
                    services=result.services[:n_jobs],
                    horizon_s=float(result.arrivals[n_jobs - 1]) + 1e-12,
                    n_servers=self._n_servers,
                )
            horizon *= 2.0
        raise QueueingError(
            f"arrival process produced fewer than {n_jobs} jobs even over a "
            f"{horizon:.3g} s horizon"
        )
