"""Discrete-event simulation of the dispatcher + cluster queue.

The paper's queueing model (Section II-B) treats the whole cluster as one
FIFO server: jobs queue at a dispatcher "until all the previous jobs have
been serviced".  This simulator is the empirical ground truth the analytic
M/D/1 results are property-tested against, and the only way to get
percentiles for general service-time distributions (M/G/1).

The single-server FIFO recursion

    start_n  = max(arrival_n, completion_{n-1})
    wait_n   = start_n - arrival_n
    completion_n = start_n + service_n

is served by the vectorized Lindley kernel from :mod:`repro.queueing.mc`
(``W = running_max(B) - B`` with ``B_n = A_n - CS_{n-1}``); the original
loop-carried recursion is kept as the ``engine="scalar"`` oracle the fast
path is property-tested against.  Multi-server pools still use an
earliest-free-server heap.

RNG-stream contract
-------------------
``run`` and ``run_jobs`` consume randomness in a fixed order: the complete
arrival sequence is drawn first, then — only once arrivals are final —
exactly one service draw per job, in arrival order.  ``run_jobs(n)``
consumes an amount of randomness that depends only on ``n`` for arrival
processes implementing :meth:`~repro.queueing.arrivals.ArrivalProcess.first_n`
(all built-in processes do), so a seeded simulation is reproducible
regardless of any horizon hint.  This matters for *stateful* service
models: the pre-fix implementation re-ran whole horizons until enough jobs
arrived, re-sampling services for every attempt, so the delivered service
times depended on how many retries the horizon guess caused.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import QueueingError
from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.queueing.arrivals import ArrivalProcess, PoissonArrivals, ProcessArrivals
from repro.queueing.mc import lindley_waits, scalar_lindley_waits
from repro.queueing.processes import ArrivalSpec, ServiceSpec
from repro.util.stats import SummaryStats, summarize

logger = get_logger(__name__)

__all__ = ["ServiceModel", "QueueSimulator", "SimulationResult"]

#: A service-time sampler: given an RNG, return one service time (seconds).
ServiceModel = Callable[[np.random.Generator], float]


@dataclass(frozen=True)
class SimulationResult:
    """Output of one FIFO-queue simulation run."""

    arrivals: np.ndarray
    waits: np.ndarray
    services: np.ndarray
    horizon_s: float
    n_servers: int = 1
    #: Per-server time of last completion (0.0 for servers that never
    #: served).  Populated by :class:`QueueSimulator`; optional so that
    #: hand-built results keep working.
    server_completions_s: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not (len(self.arrivals) == len(self.waits) == len(self.services)):
            raise QueueingError("result arrays must have equal length")
        if self.n_servers <= 0:
            raise QueueingError("n_servers must be positive")
        if (
            self.server_completions_s is not None
            and len(self.server_completions_s) != self.n_servers
        ):
            raise QueueingError(
                "server_completions_s must have one entry per server"
            )

    @property
    def n_jobs(self) -> int:
        """Number of jobs that arrived within the horizon."""
        return int(len(self.arrivals))

    @property
    def responses(self) -> np.ndarray:
        """Response (sojourn) times: wait + service."""
        return self.waits + self.services

    @property
    def completions(self) -> np.ndarray:
        """Completion times of every job."""
        return self.arrivals + self.responses

    @property
    def busy_time_s(self) -> float:
        """Total time the servers spent serving."""
        return float(np.sum(self.services))

    @property
    def utilisation(self) -> float:
        """Per-server busy fraction over each server's *observed span*.

        A server's span runs to the later of the horizon and that server's
        own last completion, so jobs finishing after the horizon do not
        inflate utilisation above one, and — in a multi-server pool — a
        server that finished early is not charged idle time for a
        colleague's long tail job.  Without per-server completions (a
        hand-built result) the pool-wide last completion is used for every
        server, which is exact for a single server.
        """
        if self.n_jobs == 0:
            return 0.0
        if self.server_completions_s is not None:
            spans = np.maximum(self.horizon_s, self.server_completions_s)
            return self.busy_time_s / float(np.sum(spans))
        span = max(self.horizon_s, float(np.max(self.completions)))
        return self.busy_time_s / (span * self.n_servers)

    def wait_stats(self) -> SummaryStats:
        """Summary statistics of the queueing delays."""
        return summarize(self.waits)

    def response_stats(self) -> SummaryStats:
        """Summary statistics of the response times."""
        return summarize(self.responses)

    def empirical_wait_cdf(self, x: float) -> float:
        """Empirical P(W <= x)."""
        if self.n_jobs == 0:
            raise QueueingError("no jobs simulated")
        return float(np.mean(self.waits <= x))


class QueueSimulator:
    """FIFO queue simulator (single server, or a shared-queue server pool).

    Parameters
    ----------
    arrivals:
        The arrival process (usually :class:`PoissonArrivals`).  A bare
        :class:`~repro.queueing.processes.ArrivalSpec` is also accepted
        and wrapped in :class:`~repro.queueing.arrivals.ProcessArrivals`
        over ``rng``.
    service:
        A fixed service time in seconds (deterministic — the paper's
        M/D/1 case), a :data:`ServiceModel` callable for per-job draws,
        or a :class:`~repro.queueing.processes.ServiceSpec` (batched;
        deterministic specs take the fixed path).
    rng:
        Generator used for random service models and for arrival specs;
        may be None when both are deterministic.
    n_servers:
        Number of parallel servers sharing the FIFO queue (1 reproduces the
        paper's whole-cluster-as-one-server dispatcher; larger values model
        a cluster partitioned into independent job slots).
    engine:
        ``"vectorized"`` (default) computes single-server waits with the
        Lindley kernel from :mod:`repro.queueing.mc`; ``"scalar"`` forces
        the loop-carried recursion kept as the cross-validation oracle.
        Both consume identical randomness.
    """

    def __init__(
        self,
        arrivals: ArrivalProcess | ArrivalSpec,
        service: float | ServiceModel | ServiceSpec,
        rng: Optional[np.random.Generator] = None,
        *,
        n_servers: int = 1,
        engine: str = "vectorized",
    ) -> None:
        if n_servers <= 0:
            raise QueueingError(f"n_servers must be positive, got {n_servers}")
        if engine not in ("vectorized", "scalar"):
            raise QueueingError(f"unknown engine {engine!r}")
        self._n_servers = int(n_servers)
        self._engine = engine
        if isinstance(arrivals, ArrivalSpec):
            if rng is None:
                raise QueueingError("an arrival process spec needs an RNG")
            arrivals = ProcessArrivals(arrivals, rng)
        self._arrivals = arrivals
        self._service_model: Optional[ServiceModel] = None
        self._service_batch: Optional[ServiceSpec] = None
        self._service_fixed: Optional[float] = None
        if isinstance(service, ServiceSpec):
            if service.fixed_s is not None:
                self._service_fixed = float(service.fixed_s)
            else:
                if rng is None:
                    raise QueueingError("a random service model needs an RNG")
                self._service_batch = service
        elif callable(service):
            if rng is None:
                raise QueueingError("a random service model needs an RNG")
            self._service_model = service
        else:
            if service <= 0:
                raise QueueingError(f"service time must be positive, got {service}")
            self._service_fixed = float(service)
        self._rng = rng

    @classmethod
    def md1(
        cls,
        arrival_rate: float,
        service_time_s: float,
        rng: np.random.Generator,
        **kwargs: object,
    ) -> "QueueSimulator":
        """Convenience constructor mirroring :class:`~repro.queueing.md1.MD1Queue`."""
        return cls(PoissonArrivals(arrival_rate, rng), service_time_s, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sample_services(self, n: int) -> np.ndarray:
        """One service draw per job, in arrival order (the RNG contract).

        Batched specs draw all ``n`` times in one call — the same
        consumption the MC engine uses, keeping the two paths on one
        stream contract."""
        if self._service_fixed is not None:
            return np.full(n, self._service_fixed)
        assert self._rng is not None
        if self._service_batch is not None:
            services = np.asarray(self._service_batch(self._rng, n), dtype=float)
            if services.shape != (n,):
                raise QueueingError(
                    f"service spec returned shape {services.shape}, "
                    f"expected ({n},)"
                )
        else:
            assert self._service_model is not None
            services = np.fromiter(
                (self._service_model(self._rng) for _ in range(n)),
                dtype=float,
                count=n,
            )
        if np.any(services <= 0):
            raise QueueingError("service model produced a non-positive time")
        return services

    def _serve(self, arrivals: np.ndarray, horizon_s: float) -> SimulationResult:
        """Serve a finalised arrival sequence to completion."""
        n = len(arrivals)
        if n == 0:
            return SimulationResult(
                arrivals=np.empty(0),
                waits=np.empty(0),
                services=np.empty(0),
                horizon_s=horizon_s,
                n_servers=self._n_servers,
                server_completions_s=np.zeros(self._n_servers),
            )
        services = self._sample_services(n)
        if self._n_servers == 1:
            if self._engine == "vectorized":
                if self._service_fixed is not None:
                    waits = lindley_waits(arrivals, self._service_fixed)
                else:
                    waits = lindley_waits(arrivals, services)
            else:
                waits = scalar_lindley_waits(arrivals, services)
            server_completions = np.array(
                [arrivals[-1] + waits[-1] + services[-1]]
            )
        else:
            waits, server_completions = self._serve_pool(arrivals, services)
        return SimulationResult(
            arrivals=arrivals,
            waits=waits,
            services=services,
            horizon_s=horizon_s,
            n_servers=self._n_servers,
            server_completions_s=server_completions,
        )

    def _serve_pool(
        self, arrivals: np.ndarray, services: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Multi-server FIFO: each job takes the earliest-free server."""
        n = len(arrivals)
        waits = np.empty(n)
        free_at = [0.0] * self._n_servers
        heapq.heapify(free_at)
        for i in range(n):
            earliest = heapq.heappop(free_at)
            start = arrivals[i] if arrivals[i] > earliest else earliest
            waits[i] = start - arrivals[i]
            heapq.heappush(free_at, start + services[i])
        return waits, np.asarray(free_at, dtype=float)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, horizon_s: float) -> SimulationResult:
        """Simulate all arrivals in [0, horizon) and serve them to completion."""
        return self._serve(self._arrivals.arrival_times(horizon_s), horizon_s)

    def run_jobs(self, n_jobs: int, horizon_hint_s: Optional[float] = None) -> SimulationResult:
        """Simulate exactly the first ``n_jobs`` arrivals.

        Percentile estimates need a controlled sample size.  For arrival
        processes with :meth:`~repro.queueing.arrivals.ArrivalProcess.first_n`
        (all built-ins) the arrivals are generated exactly, services are
        sampled once — after the arrivals are final — and
        ``horizon_hint_s`` is ignored: the result is a pure function of the
        seeds and ``n_jobs``.  Only for exotic processes without ``first_n``
        does the horizon-doubling fallback run, and even then services are
        sampled exactly once, for the truncated arrivals.
        """
        if n_jobs <= 0:
            raise QueueingError(f"n_jobs must be positive, got {n_jobs}")
        arrivals = self._arrivals.first_n(n_jobs)
        if arrivals is None:
            arrivals = self._grow_arrivals(n_jobs, horizon_hint_s)
        if len(arrivals) != n_jobs:
            raise QueueingError(
                f"arrival process returned {len(arrivals)} jobs, "
                f"expected {n_jobs}"
            )
        return self._serve(arrivals, float(arrivals[-1]) + 1e-12)

    def _grow_arrivals(
        self, n_jobs: int, horizon_hint_s: Optional[float]
    ) -> np.ndarray:
        """Fallback for processes without ``first_n``: grow the horizon until
        enough jobs arrive, then truncate.  Only arrival randomness is
        consumed here — no services are drawn for the discarded tail."""
        rate = getattr(self._arrivals, "rate", None)
        horizon = horizon_hint_s or (n_jobs / rate * 1.2 if rate else float(n_jobs))
        registry = get_registry()
        for attempt in range(64):
            arrivals = self._arrivals.arrival_times(horizon)
            if len(arrivals) >= n_jobs:
                return arrivals[:n_jobs]
            if registry.enabled:
                registry.counter(
                    "repro_des_horizon_growths_total",
                    help="Horizon guesses rejected for yielding too few jobs",
                ).inc()
            logger.debug(
                "horizon %.3g s yielded %d/%d jobs; doubling (attempt %d)",
                horizon, len(arrivals), n_jobs, attempt + 1,
            )
            horizon *= 2.0
        raise QueueingError(
            f"arrival process produced fewer than {n_jobs} jobs even over a "
            f"{horizon:.3g} s horizon"
        )
