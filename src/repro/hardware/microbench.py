"""Micro-benchmarks for power characterization (paper Section II-B).

The paper measures each per-component power with a dedicated
micro-benchmark:

* ``P_CPU,act`` — "a micro-benchmark that maximizes the CPU utilization"
  (a register-resident ALU loop: pure work cycles, no memory, no I/O);
* ``P_CPU,stall`` — "a micro-benchmark that generates a stream of cache
  misses to maximize the number of stall cycles" (a pointer-chasing
  antagonist: almost pure memory stalls);
* ``P_mem`` — "derived from specifications" (the paper reads DDR data
  sheets; we accept the data-sheet value as an argument);
* ``P_I/O`` — "obtained through direct measurement when the NIC is used"
  (a line-rate network blast);
* ``P_idle`` — "measured without any workload".

This module builds those benchmark traces, runs them on a simulated node,
and assembles a *measured* :class:`~repro.hardware.specs.PowerProfile`.  The
measured profile — not the hidden ground truth — is what the validation
pipeline feeds to the energy model, exactly as the paper's methodology
prescribes.  Measuring on one node per type suffices ("all the nodes of the
same type exhibit similar power characteristics").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.hardware.node import NodeRunResult, SimulatedNode
from repro.hardware.powermeter import PowerMeter
from repro.hardware.specs import NodeSpec, PowerProfile
from repro.obs.logs import get_logger
from repro.workloads.base import ActivityFactors
from repro.workloads.generator import JobTrace, TracePhase

__all__ = [
    "cpu_max_trace",
    "cache_antagonist_trace",
    "net_blast_trace",
    "run_microbenchmark",
    "MeasuredPowerProfile",
    "characterize_node_power",
]

logger = get_logger(__name__)

#: Default micro-benchmark duration; long enough that meter sampling noise
#: averages well below one percent.
_DEFAULT_DURATION_S = 10.0

#: Ratio of memory to core cycles in the cache antagonist: the pointer
#: chase spends almost all its time in stalls.
_ANTAGONIST_MEM_RATIO = 25.0


def _single_phase_trace(
    node_type: str, name: str, *, core_cycles: float, mem_cycles: float, io_bytes: float
) -> JobTrace:
    return JobTrace(
        workload_name=name,
        node_type=node_type,
        ops_total=1.0,
        phases=(
            TracePhase(
                ops=1.0,
                core_cycles=core_cycles,
                mem_cycles=mem_cycles,
                io_bytes=io_bytes,
            ),
        ),
    )


def cpu_max_trace(spec: NodeSpec, duration_s: float = _DEFAULT_DURATION_S) -> JobTrace:
    """A register-resident ALU loop running ~``duration_s`` on all cores."""
    if duration_s <= 0:
        raise MeasurementError(f"duration must be positive, got {duration_s}")
    return _single_phase_trace(
        spec.name,
        "microbench/cpu_max",
        core_cycles=duration_s * spec.cores * spec.fmax_hz,
        mem_cycles=0.0,
        io_bytes=0.0,
    )


def cache_antagonist_trace(
    spec: NodeSpec, duration_s: float = _DEFAULT_DURATION_S
) -> JobTrace:
    """A cache-miss stream: stall cycles dominate work cycles."""
    if duration_s <= 0:
        raise MeasurementError(f"duration must be positive, got {duration_s}")
    mem_cycles = duration_s * spec.fmax_hz
    return _single_phase_trace(
        spec.name,
        "microbench/cache_antagonist",
        core_cycles=mem_cycles / _ANTAGONIST_MEM_RATIO * spec.cores,
        mem_cycles=mem_cycles,
        io_bytes=0.0,
    )


def net_blast_trace(spec: NodeSpec, duration_s: float = _DEFAULT_DURATION_S) -> JobTrace:
    """A line-rate NIC blast with negligible CPU work."""
    if duration_s <= 0:
        raise MeasurementError(f"duration must be positive, got {duration_s}")
    return _single_phase_trace(
        spec.name,
        "microbench/net_blast",
        core_cycles=duration_s * spec.fmax_hz * 0.01,
        mem_cycles=0.0,
        io_bytes=duration_s * spec.nic_bps / 8.0,
    )


#: Micro-benchmarks exercise their target component at full activity.
_FULL_ACTIVITY = ActivityFactors(cpu_active=1.0, cpu_stall=1.0, memory=1.0, network=1.0)


def run_microbenchmark(
    node: SimulatedNode, trace: JobTrace, meter: PowerMeter
) -> tuple[NodeRunResult, float]:
    """Run one benchmark and return (run record, measured mean power)."""
    result = node.execute(trace, _FULL_ACTIVITY)
    measurement = meter.measure(result.segments)
    return result, measurement.mean_power_w


@dataclass(frozen=True)
class MeasuredPowerProfile:
    """The characterization's view of one node's component powers (watts)."""

    idle_w: float
    cpu_active_w: float
    cpu_stall_w: float
    memory_w: float
    network_w: float

    def as_power_profile(self, nameplate_peak_w: float) -> PowerProfile:
        """Package as a :class:`PowerProfile` for the model."""
        return PowerProfile(
            idle_w=self.idle_w,
            cpu_active_w=self.cpu_active_w,
            cpu_stall_w=max(min(self.cpu_stall_w, self.cpu_active_w), 0.0),
            memory_w=self.memory_w,
            network_w=self.network_w,
            nameplate_peak_w=nameplate_peak_w,
        )


def characterize_node_power(
    node: SimulatedNode,
    meter: PowerMeter,
    *,
    duration_s: float = _DEFAULT_DURATION_S,
    memory_power_spec_w: float | None = None,
) -> NodeSpec:
    """Measure a node's power profile and return a *characterized* spec.

    ``memory_power_spec_w`` is the data-sheet memory power the paper reads
    from DDR specifications; it defaults to the true value (a perfect data
    sheet).  The cache-antagonist measurement lumps stall and memory power;
    subtracting the data-sheet memory power isolates the stall component.
    """
    spec = node.spec
    # Idle: measured without any workload.
    idle = meter.measure(node.idle_segments(duration_s)).mean_power_w

    # CPU active: ALU loop; dynamic part is P_CPU,act (the loop's memory
    # and network components are zero).
    _, cpu_total = run_microbenchmark(node, cpu_max_trace(spec, duration_s), meter)
    cpu_active = max(cpu_total - idle, 0.0)

    # Stall + memory: the cache antagonist keeps the memory system and the
    # stall circuitry busy; a small core-loop share is also present and is
    # corrected for using the already-measured active power.
    antagonist = cache_antagonist_trace(spec, duration_s)
    result, lump_total = run_microbenchmark(node, antagonist, meter)
    core_share = (result.true_work_cycles / (spec.cores * spec.fmax_hz)) / result.elapsed_s
    mem_spec = (
        memory_power_spec_w if memory_power_spec_w is not None else spec.power.memory_w
    )
    stall = max(lump_total - idle - mem_spec - cpu_active * core_share, 0.0)

    # Network: line-rate blast; dynamic part is P_I/O.
    _, net_total = run_microbenchmark(node, net_blast_trace(spec, duration_s), meter)
    net = max(net_total - idle, 0.0)

    measured = MeasuredPowerProfile(
        idle_w=idle,
        cpu_active_w=cpu_active,
        cpu_stall_w=stall,
        memory_w=mem_spec,
        network_w=net,
    )
    logger.debug(
        "%s: characterized idle=%.3f W, cpu_active=%.3f W, cpu_stall=%.3f W, "
        "memory=%.3f W (spec), network=%.3f W",
        spec.name,
        idle,
        cpu_active,
        stall,
        mem_spec,
        net,
    )
    return dataclasses.replace(
        spec, power=measured.as_power_profile(spec.power.nameplate_peak_w)
    )
