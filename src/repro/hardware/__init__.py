"""Simulated testbed building blocks: node specs, node executor, perf-style
counters, power meter and micro-benchmarks.

The composite :class:`~repro.hardware.testbed.Testbed` (a measurable
cluster) lives in :mod:`repro.hardware.testbed` and is intentionally NOT
re-exported here: it depends on :mod:`repro.cluster`, which itself builds on
the node specs below, and importing it from this package ``__init__`` would
create an import cycle.
"""

from repro.hardware.counters import CounterSet, PerfReader
from repro.hardware.microbench import (
    MeasuredPowerProfile,
    cache_antagonist_trace,
    characterize_node_power,
    cpu_max_trace,
    net_blast_trace,
    run_microbenchmark,
)
from repro.hardware.node import NodeRunResult, NonIdealities, SimulatedNode
from repro.hardware.powermeter import EnergyMeasurement, PowerMeter, PowerSegment
from repro.hardware.specs import (
    A9_NODES_PER_SWITCH,
    SWITCH_PEAK_W,
    DvfsPoint,
    NodeSpec,
    PowerProfile,
    a9,
    get_node_spec,
    k10,
    register_node_spec,
    registered_node_names,
)
__all__ = [
    "NodeSpec",
    "PowerProfile",
    "DvfsPoint",
    "a9",
    "k10",
    "get_node_spec",
    "register_node_spec",
    "registered_node_names",
    "SWITCH_PEAK_W",
    "A9_NODES_PER_SWITCH",
    "SimulatedNode",
    "NodeRunResult",
    "NonIdealities",
    "PowerMeter",
    "PowerSegment",
    "EnergyMeasurement",
    "CounterSet",
    "PerfReader",
    "cpu_max_trace",
    "cache_antagonist_trace",
    "net_blast_trace",
    "run_microbenchmark",
    "characterize_node_power",
    "MeasuredPowerProfile",
]
