"""Node specifications for the simulated testbed.

The paper's Table 5 describes the two node types used for validation:

========== ===================== =====================
Attribute   A9 (wimpy)            K10 (brawny)
========== ===================== =====================
ISA         ARMv7-A               x86_64
Clock       0.2 - 1.4 GHz         0.8 - 2.1 GHz
Cores/node  4                     6
L1 data     32 KB / core          64 KB / core
L2          1 MB / node           512 KB / core
L3          --                    6 MB / node
Memory      1 GB LP-DDR2          8 GB DDR3
I/O         100 Mbps              1 Gbps
========== ===================== =====================

Measured powers reported in the text: A9 idles at ~1.8 W with a ~5 W
nameplate peak; K10 idles at ~45 W with a ~60 W nameplate peak.  The paper's
footnote 4 counts 5 selectable core frequencies for the ARM node and 3 for
the AMD node, which fixes the DVFS tables below.

Per-component power ceilings (CPU active, CPU stall, memory, NIC) are the
quantities the paper measures with micro-benchmarks (Section II-B); the
values here are the hidden "ground truth" of the simulated testbed and act
as upper envelopes that per-workload activity factors scale down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.util.units import GB, GBPS, GHZ, KB, MB, MBPS

__all__ = [
    "DvfsPoint",
    "PowerProfile",
    "NodeSpec",
    "a9",
    "k10",
    "get_node_spec",
    "register_node_spec",
    "registered_node_names",
    "SWITCH_PEAK_W",
    "A9_NODES_PER_SWITCH",
]

#: Peak power drawn by one Ethernet switch connecting wimpy nodes
#: (paper footnote 3: "about 20W peak power drawn by the switch").
SWITCH_PEAK_W = 20.0

#: Number of A9 nodes sharing one switch.  The paper's 8:1 substitution ratio
#: (one 60 W K10 is worth 8 A9 at 5 W plus a 20 W switch share) implies one
#: switch per 8 wimpy nodes: 8 x 5 W + 20 W = 60 W.
A9_NODES_PER_SWITCH = 8


@dataclass(frozen=True)
class DvfsPoint:
    """One operating point of a node's frequency/voltage table."""

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {self.frequency_hz}")
        if self.voltage_v <= 0:
            raise ConfigurationError(f"voltage must be positive, got {self.voltage_v}")


@dataclass(frozen=True)
class PowerProfile:
    """Per-component power envelope of a node (watts).

    ``cpu_active_w`` / ``cpu_stall_w`` are the powers drawn with *all* cores
    executing work cycles / stalling, at the maximum DVFS point; lower core
    counts and frequencies scale them via :meth:`NodeSpec.cpu_power_scale`.
    ``memory_w`` and ``network_w`` are the active-subsystem powers.
    ``idle_w`` is the whole-node idle power; ``nameplate_peak_w`` is the
    headline peak the paper uses for power-budget arithmetic.
    """

    idle_w: float
    cpu_active_w: float
    cpu_stall_w: float
    memory_w: float
    network_w: float
    nameplate_peak_w: float

    def __post_init__(self) -> None:
        for name in ("idle_w", "cpu_active_w", "cpu_stall_w", "memory_w", "network_w", "nameplate_peak_w"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.cpu_stall_w > self.cpu_active_w:
            raise ConfigurationError("stall power cannot exceed active power")
        if self.nameplate_peak_w < self.idle_w:
            raise ConfigurationError("nameplate peak below idle power")

    @property
    def dynamic_ceiling_w(self) -> float:
        """Maximum possible dynamic power (all subsystems fully active)."""
        return self.cpu_active_w + self.memory_w + self.network_w


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one node type of the heterogeneous cluster."""

    name: str
    isa: str
    cores: int
    dvfs: Tuple[DvfsPoint, ...]
    l1d_bytes_per_core: int
    l2_bytes: int
    l3_bytes: Optional[int]
    memory_bytes: int
    memory_type: str
    nic_bps: float
    mem_bandwidth_bytes_per_s: float
    power: PowerProfile

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"node {self.name!r}: cores must be positive")
        if not self.dvfs:
            raise ConfigurationError(f"node {self.name!r}: empty DVFS table")
        freqs = [p.frequency_hz for p in self.dvfs]
        if sorted(freqs) != freqs or len(set(freqs)) != len(freqs):
            raise ConfigurationError(
                f"node {self.name!r}: DVFS table must be strictly increasing in frequency"
            )
        if self.nic_bps <= 0 or self.mem_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(f"node {self.name!r}: bandwidths must be positive")

    # ------------------------------------------------------------------
    # DVFS helpers
    # ------------------------------------------------------------------
    @property
    def fmin_hz(self) -> float:
        """Lowest selectable core frequency."""
        return self.dvfs[0].frequency_hz

    @property
    def fmax_hz(self) -> float:
        """Highest selectable core frequency."""
        return self.dvfs[-1].frequency_hz

    @property
    def frequencies_hz(self) -> Tuple[float, ...]:
        """All selectable core frequencies, ascending."""
        return tuple(p.frequency_hz for p in self.dvfs)

    def voltage_at(self, frequency_hz: float) -> float:
        """Supply voltage at an exact DVFS frequency.

        Frequencies are discrete operating points; asking for a frequency not
        in the table is a configuration error, not something to interpolate
        silently.
        """
        for point in self.dvfs:
            if math.isclose(point.frequency_hz, frequency_hz, rel_tol=1e-9):
                return point.voltage_v
        raise ConfigurationError(
            f"node {self.name!r} has no DVFS point at {frequency_hz / GHZ:.3f} GHz; "
            f"available: {[f / GHZ for f in self.frequencies_hz]} GHz"
        )

    def validate_operating_point(self, cores: int, frequency_hz: float) -> None:
        """Raise :class:`ConfigurationError` unless (cores, f) is selectable."""
        if not 1 <= cores <= self.cores:
            raise ConfigurationError(
                f"node {self.name!r}: active cores must be in [1, {self.cores}], got {cores}"
            )
        self.voltage_at(frequency_hz)  # raises if not a DVFS point

    def cpu_power_scale(self, cores: int, frequency_hz: float) -> float:
        """CMOS dynamic-power scale factor relative to (all cores, fmax).

        Dynamic power scales with the number of switching cores and with
        f * V(f)^2 (activity * frequency * voltage squared), the standard
        CMOS model the paper's DVFS analysis relies on.  Returns a value in
        (0, 1].
        """
        self.validate_operating_point(cores, frequency_hz)
        v = self.voltage_at(frequency_hz)
        vmax = self.dvfs[-1].voltage_v
        per_core = (frequency_hz * v * v) / (self.fmax_hz * vmax * vmax)
        return (cores / self.cores) * per_core

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.isa}, {self.cores} cores, "
            f"{self.fmin_hz / GHZ:.1f}-{self.fmax_hz / GHZ:.1f} GHz, "
            f"idle {self.power.idle_w:.1f} W, peak {self.power.nameplate_peak_w:.0f} W)"
        )


# ----------------------------------------------------------------------
# Built-in node types (paper Table 5)
# ----------------------------------------------------------------------
def a9() -> NodeSpec:
    """The wimpy node: ARM Cortex-A9 (paper Table 5, left column)."""
    return NodeSpec(
        name="A9",
        isa="ARMv7-A",
        cores=4,
        dvfs=(
            DvfsPoint(0.2 * GHZ, 0.85),
            DvfsPoint(0.5 * GHZ, 0.95),
            DvfsPoint(0.8 * GHZ, 1.05),
            DvfsPoint(1.1 * GHZ, 1.15),
            DvfsPoint(1.4 * GHZ, 1.25),
        ),
        l1d_bytes_per_core=32 * KB,
        l2_bytes=1 * MB,
        l3_bytes=None,
        memory_bytes=1 * GB,
        memory_type="LP-DDR2",
        nic_bps=100 * MBPS,
        mem_bandwidth_bytes_per_s=1.5e9,
        power=PowerProfile(
            idle_w=1.8,
            cpu_active_w=2.4,
            cpu_stall_w=1.1,
            memory_w=0.55,
            network_w=0.35,
            nameplate_peak_w=5.0,
        ),
    )


def k10() -> NodeSpec:
    """The brawny node: AMD Opteron K10 (paper Table 5, right column)."""
    return NodeSpec(
        name="K10",
        isa="x86_64",
        cores=6,
        dvfs=(
            DvfsPoint(0.8 * GHZ, 0.95),
            DvfsPoint(1.5 * GHZ, 1.15),
            DvfsPoint(2.1 * GHZ, 1.30),
        ),
        l1d_bytes_per_core=64 * KB,
        l2_bytes=512 * KB,  # per core; total L2 = cores * l2_bytes for K10
        l3_bytes=6 * MB,
        memory_bytes=8 * GB,
        memory_type="DDR3",
        nic_bps=1 * GBPS,
        mem_bandwidth_bytes_per_s=1.05e10,
        power=PowerProfile(
            idle_w=45.0,
            cpu_active_w=33.0,
            cpu_stall_w=15.0,
            memory_w=6.0,
            network_w=2.5,
            nameplate_peak_w=60.0,
        ),
    )


_REGISTRY: Dict[str, NodeSpec] = {}


def register_node_spec(spec: NodeSpec, *, overwrite: bool = False) -> None:
    """Register a node type for lookup by name.

    User-defined node types (e.g. an ARM Cortex-A15 or a Xeon) participate in
    every analysis exactly like the built-ins once registered.
    """
    if spec.name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"node type {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec


def get_node_spec(name: str) -> NodeSpec:
    """Look up a registered node type by name (case-sensitive)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown node type {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_node_names() -> Tuple[str, ...]:
    """Names of all registered node types, sorted."""
    return tuple(sorted(_REGISTRY))


# Built-ins are always available.
register_node_spec(a9())
register_node_spec(k10())
