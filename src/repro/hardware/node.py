"""The simulated node — executes job traces with second-order effects.

This is the testbed's "physical machine".  It executes a
:class:`~repro.workloads.generator.JobTrace` phase by phase using the same
resource-overlap semantics as the analytic model (core/memory overlap
out-of-order, I/O overlaps via DMA) **plus** the effects the model ignores:

* per-job dispatch overhead (OS scheduling, process startup),
* per-phase synchronisation overhead,
* cold-cache warm-up inflating the first phase's memory stalls,
* a frequency-invariant fraction of memory time (DRAM latency does not
  scale with the core clock, while the model's ``cycles_mem / f`` says it
  does).

The run produces a piecewise-constant power profile (for the simulated
power meter) and true cycle totals (for the simulated ``perf`` reader).
The gap between this execution and the flat analytic model is what the
paper's Table 4 validation quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.hardware.powermeter import PowerSegment
from repro.hardware.specs import NodeSpec
from repro.workloads.base import ActivityFactors
from repro.workloads.generator import JobTrace

__all__ = ["NonIdealities", "NodeRunResult", "SimulatedNode"]


@dataclass(frozen=True)
class NonIdealities:
    """Magnitudes of the second-order effects the analytic model omits."""

    #: Fixed per-job dispatch/startup cost (seconds).
    dispatch_overhead_s: float = 2e-3
    #: Relative jitter of the dispatch cost.
    dispatch_jitter_frac: float = 0.25
    #: Per-phase synchronisation cost (seconds).
    phase_overhead_s: float = 2e-4
    #: Extra memory stalls in the first (cold-cache) phase.
    warmup_mem_factor: float = 0.15
    #: Fraction of memory time that does NOT scale with core frequency.
    mem_freq_invariant_frac: float = 0.2
    #: Relative power draw (over idle) during dispatch/sync overheads.
    overhead_power_frac: float = 0.1

    def __post_init__(self) -> None:
        for name in (
            "dispatch_overhead_s",
            "dispatch_jitter_frac",
            "phase_overhead_s",
            "warmup_mem_factor",
            "overhead_power_frac",
        ):
            if getattr(self, name) < 0:
                raise MeasurementError(f"{name} must be non-negative")
        if not 0.0 <= self.mem_freq_invariant_frac <= 1.0:
            raise MeasurementError("mem_freq_invariant_frac must be in [0, 1]")


@dataclass(frozen=True)
class NodeRunResult:
    """Ground truth of one job-trace execution on one node."""

    node_type: str
    cores: int
    frequency_hz: float
    elapsed_s: float
    segments: Tuple[PowerSegment, ...]
    true_work_cycles: float
    true_stall_cycles: float
    true_mem_cycles: float
    true_net_bytes: float

    @property
    def true_energy_j(self) -> float:
        """Exact energy of the run (what a perfect meter would read)."""
        return sum(s.duration_s * s.power_w for s in self.segments)

    @property
    def mean_power_w(self) -> float:
        """Exact average power over the run."""
        return self.true_energy_j / self.elapsed_s


class SimulatedNode:
    """One node of the simulated testbed.

    Parameters
    ----------
    spec:
        The node type being simulated (its power profile is the hidden
        ground truth; experiments should *characterize* it through the
        micro-benchmarks rather than read it).
    rng:
        Random stream for the run-to-run jitter.
    nonideal:
        Magnitudes of the modelled second-order effects.
    """

    def __init__(
        self,
        spec: NodeSpec,
        rng: np.random.Generator,
        nonideal: NonIdealities = NonIdealities(),
    ) -> None:
        self._spec = spec
        self._rng = rng
        self._nonideal = nonideal

    @property
    def spec(self) -> NodeSpec:
        """The simulated node type."""
        return self._spec

    @property
    def nonideal(self) -> NonIdealities:
        """The node's non-ideality magnitudes."""
        return self._nonideal

    # ------------------------------------------------------------------
    def execute(
        self,
        trace: JobTrace,
        activity: ActivityFactors,
        *,
        cores: Optional[int] = None,
        frequency_hz: Optional[float] = None,
        io_service_floor_s_per_op: float = 0.0,
        cpu_power_drift: float = 0.0,
    ) -> NodeRunResult:
        """Execute a job trace and return the ground-truth run record.

        ``activity`` is the workload's true per-component power activity —
        a property of the running program, carried alongside the trace.
        ``cpu_power_drift`` scales the CPU power components relative to the
        characterized activity: full-size inputs shift the instruction mix,
        and the resulting draw may exceed the micro-benchmark envelope
        (vector/crypto units draw more than a plain ALU loop), so the drift
        is applied multiplicatively rather than through the capped
        :class:`ActivityFactors`.
        """
        spec = self._spec
        c = cores if cores is not None else spec.cores
        f = frequency_hz if frequency_hz is not None else spec.fmax_hz
        spec.validate_operating_point(c, f)
        if trace.node_type != spec.name:
            raise MeasurementError(
                f"trace was generated for {trace.node_type!r}, "
                f"this node is {spec.name!r}"
            )
        if cpu_power_drift < -1.0:
            raise MeasurementError(
                f"cpu_power_drift must be > -1, got {cpu_power_drift}"
            )
        ni = self._nonideal
        scale = spec.cpu_power_scale(c, f)
        pw = spec.power
        drift = 1.0 + cpu_power_drift
        p_act = pw.cpu_active_w * scale * activity.cpu_active * drift
        p_stall = pw.cpu_stall_w * scale * activity.cpu_stall * drift
        p_mem = pw.memory_w * activity.memory
        p_net = pw.network_w * activity.network
        p_overhead = pw.idle_w * (1.0 + ni.overhead_power_frac)

        segments: List[PowerSegment] = []
        dispatch = ni.dispatch_overhead_s
        if ni.dispatch_jitter_frac:
            dispatch *= max(0.0, 1.0 + float(self._rng.normal(0.0, ni.dispatch_jitter_frac)))
        if dispatch > 0:
            segments.append(PowerSegment(duration_s=dispatch, power_w=p_overhead))

        elapsed = dispatch
        work_cycles = 0.0
        stall_cycles = 0.0
        total_mem_cycles = 0.0
        net_bytes = 0.0
        nic_bytes_per_s = spec.nic_bps / 8.0
        inv = ni.mem_freq_invariant_frac

        for i, phase in enumerate(trace.phases):
            mem_cycles = phase.mem_cycles * (1.0 + (ni.warmup_mem_factor if i == 0 else 0.0))
            t_core = phase.core_cycles / (c * f)
            # Memory time: a share of the stall budget is DRAM latency and
            # does not contract with the core clock.
            t_mem = mem_cycles * ((1.0 - inv) / f + inv / spec.fmax_hz)
            t_io = max(
                phase.io_bytes / nic_bytes_per_s,
                phase.ops * io_service_floor_s_per_op,
            )
            busy = max(t_core, t_mem, t_io)
            if busy > 0:
                t_act = t_core
                t_stall = max(0.0, t_mem - t_core)
                avg_power = pw.idle_w + (
                    p_act * t_act + p_stall * t_stall + p_mem * t_mem + p_net * t_io
                ) / busy
                segments.append(PowerSegment(duration_s=busy, power_w=avg_power))
                elapsed += busy
                work_cycles += phase.core_cycles
                stall_cycles += t_stall * f  # stalls observed in core cycles
                total_mem_cycles += mem_cycles
                net_bytes += phase.io_bytes
            if ni.phase_overhead_s > 0:
                segments.append(
                    PowerSegment(duration_s=ni.phase_overhead_s, power_w=p_overhead)
                )
                elapsed += ni.phase_overhead_s

        return NodeRunResult(
            node_type=spec.name,
            cores=c,
            frequency_hz=f,
            elapsed_s=elapsed,
            segments=tuple(segments),
            true_work_cycles=work_cycles,
            true_stall_cycles=stall_cycles,
            true_mem_cycles=total_mem_cycles,
            true_net_bytes=net_bytes,
        )

    def idle_segments(self, duration_s: float) -> Tuple[PowerSegment, ...]:
        """The power profile of this node sitting idle for ``duration_s``."""
        if duration_s < 0:
            raise MeasurementError(f"duration must be non-negative, got {duration_s}")
        if duration_s == 0:
            return ()
        return (PowerSegment(duration_s=duration_s, power_w=self._spec.power.idle_w),)
