"""Simulated power meter — the testbed's Yokogawa WT210 stand-in.

The paper measures node power and energy with a Yokogawa WT210 (Figure 4).
This simulation reproduces the instrument's observable behaviour: it samples
the (piecewise-constant) true power draw at a fixed rate, applies a fixed
per-instrument gain error plus white readout noise, quantises to the
display resolution, and integrates samples into energy.  Measurement error
from this chain is one ingredient of the paper's Table 4 model-vs-measured
gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import MeasurementError

__all__ = ["PowerSegment", "EnergyMeasurement", "PowerMeter"]


@dataclass(frozen=True)
class PowerSegment:
    """A stretch of constant true power draw."""

    duration_s: float
    power_w: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise MeasurementError(f"segment duration must be >= 0, got {self.duration_s}")
        if self.power_w < 0:
            raise MeasurementError(f"segment power must be >= 0, got {self.power_w}")


@dataclass(frozen=True)
class EnergyMeasurement:
    """One integrated measurement."""

    energy_j: float
    duration_s: float
    n_samples: int

    @property
    def mean_power_w(self) -> float:
        """Average power over the measurement window."""
        if self.duration_s <= 0:
            raise MeasurementError("zero-duration measurement has no mean power")
        return self.energy_j / self.duration_s


class PowerMeter:
    """Sampling power meter with gain error, noise and quantisation.

    Parameters
    ----------
    rng:
        Random stream; the instrument's gain error is drawn once at
        construction (a real meter's calibration offset is fixed), readout
        noise is drawn per sample.
    sample_hz:
        Sampling rate; the WT210 updates at ~10 Hz.
    noise_frac:
        Standard deviation of per-sample multiplicative readout noise.
    gain_error_frac:
        Standard deviation of the per-instrument gain error.
    resolution_w:
        Display quantisation step.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        sample_hz: float = 10.0,
        noise_frac: float = 0.01,
        gain_error_frac: float = 0.01,
        resolution_w: float = 0.01,
    ) -> None:
        if sample_hz <= 0:
            raise MeasurementError(f"sample rate must be positive, got {sample_hz}")
        if noise_frac < 0 or gain_error_frac < 0 or resolution_w < 0:
            raise MeasurementError("noise, gain error and resolution must be >= 0")
        self._rng = rng
        self._sample_hz = float(sample_hz)
        self._noise_frac = float(noise_frac)
        self._resolution_w = float(resolution_w)
        self._gain = 1.0 + float(rng.normal(0.0, gain_error_frac)) if gain_error_frac else 1.0

    @property
    def gain(self) -> float:
        """The instrument's fixed multiplicative gain error."""
        return self._gain

    @property
    def sample_hz(self) -> float:
        """Sampling rate (Hz)."""
        return self._sample_hz

    def measure(self, segments: Sequence[PowerSegment]) -> EnergyMeasurement:
        """Sample a piecewise-constant power profile and integrate to energy.

        Samples are taken at the midpoints of uniform intervals covering the
        profile.  At least one sample is always taken, so very short runs
        are measured (coarsely), like on the real instrument.
        """
        segs = [s for s in segments if s.duration_s > 0]
        if not segs:
            raise MeasurementError("cannot measure an empty power profile")
        durations = np.asarray([s.duration_s for s in segs])
        powers = np.asarray([s.power_w for s in segs])
        total = float(durations.sum())
        edges = np.concatenate([[0.0], np.cumsum(durations)])

        n = max(1, int(np.ceil(total * self._sample_hz)))
        ts = (np.arange(n) + 0.5) * (total / n)
        idx = np.minimum(np.searchsorted(edges, ts, side="right") - 1, len(segs) - 1)
        true = powers[idx]
        noisy = true * self._gain
        if self._noise_frac:
            noisy = noisy * (1.0 + self._rng.normal(0.0, self._noise_frac, size=n))
        if self._resolution_w:
            noisy = np.round(noisy / self._resolution_w) * self._resolution_w
        noisy = np.maximum(noisy, 0.0)
        energy = float(noisy.mean()) * total
        return EnergyMeasurement(energy_j=energy, duration_s=total, n_samples=n)

    def measure_constant(self, power_w: float, duration_s: float) -> EnergyMeasurement:
        """Measure a constant draw for ``duration_s`` seconds."""
        return self.measure([PowerSegment(duration_s=duration_s, power_w=power_w)])
