"""The simulated validation testbed (paper Figure 4).

Wires simulated nodes, power meters and ``perf`` readers into a cluster that
can *measure* a job end to end: generate per-node ground-truth traces, run
them, time the makespan, and integrate every node's power draw (including
the idle tail of nodes that finish early — a real cluster keeps burning idle
power until the last straggler completes).

The paper's validation setup is a small heterogeneous cluster of wimpy and
brawny nodes attached to a Yokogawa WT210; :func:`validation_testbed` builds
the equivalent simulated rack (4 x A9 + 1 x K10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import MeasurementError
from repro.hardware.counters import CounterSet, PerfReader
from repro.hardware.node import NodeRunResult, NonIdealities, SimulatedNode
from repro.hardware.powermeter import PowerMeter
from repro.util.rng import RngRegistry
from repro.workloads.base import Workload
from repro.workloads.generator import generate_trace

__all__ = ["MeasuredJob", "Testbed", "validation_testbed"]


@dataclass(frozen=True)
class MeasuredJob:
    """End-to-end measurement of one job on the testbed."""

    workload_name: str
    makespan_s: float
    energy_j: float
    node_runs: Tuple[NodeRunResult, ...]

    @property
    def mean_power_w(self) -> float:
        """Average cluster power over the job."""
        return self.energy_j / self.makespan_s


class Testbed:
    """A measurable simulated cluster.

    (``__test__ = False`` keeps pytest from collecting this class when it is
    imported into test modules — the name merely starts with "Test".)

    Parameters
    ----------
    config:
        Node composition and operating points.  All testbed mechanics (how
        many simulated nodes, at which (c, f)) come from here.
    registry:
        Deterministic RNG registry; every node, meter and perf reader gets
        its own named stream.
    nonideal:
        Second-order-effect magnitudes shared by all nodes.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        config: ClusterConfiguration,
        registry: RngRegistry,
        *,
        nonideal: NonIdealities = NonIdealities(),
    ) -> None:
        self._config = config
        self._registry = registry
        self._nodes: List[Tuple[SimulatedNode, int, float]] = []  # node, cores, f
        self._meters: List[PowerMeter] = []
        for group in config.groups:
            for i in range(group.count):
                name = f"{group.spec.name}/{i}"
                self._nodes.append(
                    (
                        SimulatedNode(
                            group.spec,
                            registry.stream(f"node/{name}"),
                            nonideal,
                        ),
                        group.cores,
                        group.frequency_hz,
                    )
                )
                self._meters.append(PowerMeter(registry.stream(f"meter/{name}")))
        self._perf = PerfReader(registry.stream("perf"))

    @property
    def config(self) -> ClusterConfiguration:
        """The cluster composition this testbed simulates."""
        return self._config

    @property
    def n_nodes(self) -> int:
        """Total simulated node count."""
        return len(self._nodes)

    def node_of_type(self, node_type: str) -> SimulatedNode:
        """One representative node of a type (for characterization runs)."""
        for node, _, _ in self._nodes:
            if node.spec.name == node_type:
                return node
        raise MeasurementError(f"testbed has no {node_type!r} node")

    def meter_for_type(self, node_type: str) -> PowerMeter:
        """The power meter attached to the representative node of a type."""
        for (node, _, _), meter in zip(self._nodes, self._meters):
            if node.spec.name == node_type:
                return meter
        raise MeasurementError(f"testbed has no {node_type!r} node")

    @property
    def perf(self) -> PerfReader:
        """The testbed's counter reader."""
        return self._perf

    # ------------------------------------------------------------------
    def run_job(
        self,
        workload: Workload,
        *,
        work_split: Mapping[str, float],
        job_index: int = 0,
    ) -> MeasuredJob:
        """Execute one job and measure makespan and total energy.

        ``work_split`` maps node type to the fraction of the job's ops
        assigned to EACH NODE of that type (the static mapping a deployer
        derives from the model's execution rates).  Fractions must sum to 1
        over all nodes.
        """
        total = sum(
            work_split.get(g.spec.name, 0.0) * g.count for g in self._config.groups
        )
        if abs(total - 1.0) > 1e-6:
            raise MeasurementError(
                f"work split covers {total:.6f} of the job, expected 1.0"
            )
        # Full-size inputs shift the CPU power draw relative to the small
        # characterization input (see ACTIVITY_SIZE_DRIFT); the drift follows
        # the same saturating working-set step as the cycle demands.
        from repro.workloads.suite import ACTIVITY_SIZE_DRIFT

        small = workload.small_input_ops()
        step = (
            min(1.0, math.log(workload.ops_per_job / small) / math.log(16.0))
            if workload.ops_per_job > small
            else 0.0
        )
        drift = ACTIVITY_SIZE_DRIFT.get(workload.name, 0.0) * step

        run_by_slot: Dict[int, NodeRunResult] = {}
        for idx, (node, cores, freq) in enumerate(self._nodes):
            spec_name = node.spec.name
            share = work_split.get(spec_name, 0.0)
            if share <= 0.0:
                continue
            demand = workload.demand_for(spec_name)
            trace = generate_trace(
                workload,
                spec_name,
                workload.ops_per_job * share,
                self._registry.stream(f"trace/{spec_name}/{idx}/{job_index}"),
            )
            run_by_slot[idx] = node.execute(
                trace,
                demand.activity,
                cores=cores,
                frequency_hz=freq,
                io_service_floor_s_per_op=demand.io_service_floor_s,
                cpu_power_drift=drift,
            )
        if not run_by_slot:
            raise MeasurementError("work split assigned no work to any node")
        runs = list(run_by_slot.values())

        makespan = max(r.elapsed_s for r in runs)
        energy = 0.0
        for idx, (node, _, _) in enumerate(self._nodes):
            meter = self._meters[idx]
            run = run_by_slot.get(idx)
            if run is None:
                # Unused node idles for the whole job.
                energy += meter.measure(node.idle_segments(makespan)).energy_j
                continue
            segments = list(run.segments)
            segments.extend(node.idle_segments(makespan - run.elapsed_s))
            energy += meter.measure(segments).energy_j
        return MeasuredJob(
            workload_name=workload.name,
            makespan_s=makespan,
            energy_j=energy,
            node_runs=tuple(runs),
        )

    def read_counters(self, run: NodeRunResult) -> CounterSet:
        """Counter snapshot of a run on this testbed."""
        return self._perf.read_run(run)

    def measure_idle(self, duration_s: float) -> float:
        """Metered energy of the whole rack idling for ``duration_s`` (J).

        Zero duration measures nothing and reads zero.
        """
        if duration_s < 0:
            raise MeasurementError(f"duration must be non-negative, got {duration_s}")
        if duration_s == 0:
            return 0.0
        return sum(
            meter.measure(node.idle_segments(duration_s)).energy_j
            for (node, _, _), meter in zip(self._nodes, self._meters)
        )


def validation_testbed(
    registry: RngRegistry,
    *,
    n_wimpy: int = 4,
    n_brawny: int = 1,
    nonideal: NonIdealities = NonIdealities(),
) -> Testbed:
    """The paper's Figure 4 validation rack: wimpy board farm + one brawny.

    Node counts are parameters so tests can validate across different
    heterogeneous configurations, as the paper reports doing.
    """
    config = ClusterConfiguration.mix({"A9": n_wimpy, "K10": n_brawny})
    return Testbed(config, registry, nonideal=nonideal)
