"""Hardware event counters — the testbed's ``perf`` stand-in.

The paper reads hardware event counters through ``perf`` to characterize
workloads (Section II-B).  The simulated node tracks its true executed
cycles; this module models the measurement interface on top: a counter
snapshot with small per-counter multiplicative jitter (sampling skid,
multiplexing error) and the derived quantities characterization consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError

__all__ = ["CounterSet", "PerfReader"]

#: Nominal instructions per work cycle used to report an instruction count
#: (superscalar cores of this class sustain ~1.5 IPC on datacenter codes).
_NOMINAL_IPC = 1.5

#: Core cycles lost per last-level cache miss, used to report a miss count
#: from stall cycles (order of a DRAM access at ~1 GHz).
_MISS_PENALTY_CYCLES = 80.0


@dataclass(frozen=True)
class CounterSet:
    """One snapshot of hardware event counters for a run."""

    cycles: float
    stall_cycles: float
    instructions: float
    llc_misses: float
    net_bytes: float
    elapsed_s: float

    def __post_init__(self) -> None:
        for name in ("cycles", "stall_cycles", "instructions", "llc_misses", "net_bytes"):
            if getattr(self, name) < 0:
                raise MeasurementError(f"counter {name} must be non-negative")
        if self.elapsed_s <= 0:
            raise MeasurementError("elapsed time must be positive")

    @property
    def work_cycles(self) -> float:
        """Cycles spent executing (total minus stalls)."""
        return max(0.0, self.cycles - self.stall_cycles)

    @property
    def stall_fraction(self) -> float:
        """Fraction of cycles stalled on memory."""
        return self.stall_cycles / self.cycles if self.cycles else 0.0

    @property
    def ipc(self) -> float:
        """Instructions per (total) cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mem_cycles_estimate(self) -> float:
        """Total memory-access cycles estimated from the LLC miss count.

        Out-of-order cores hide memory time behind work cycles, so the
        stall counter only sees the *unhidden* part; characterization
        recovers the full memory demand from the miss count times the
        nominal miss penalty (the same conversion ``perf``-based tooling
        applies).
        """
        return self.llc_misses * _MISS_PENALTY_CYCLES


class PerfReader:
    """Reads counters off a simulated run with realistic jitter.

    ``perf`` counter reads carry small errors from event multiplexing and
    counter skid; a fixed relative jitter per counter models that.
    """

    def __init__(self, rng: np.random.Generator, *, jitter_frac: float = 0.003) -> None:
        if jitter_frac < 0:
            raise MeasurementError(f"jitter must be non-negative, got {jitter_frac}")
        self._rng = rng
        self._jitter = float(jitter_frac)

    def _jittered(self, value: float) -> float:
        if value == 0.0 or self._jitter == 0.0:
            return value
        return max(0.0, value * (1.0 + float(self._rng.normal(0.0, self._jitter))))

    def read(
        self,
        *,
        work_cycles: float,
        stall_cycles: float,
        mem_cycles: float,
        net_bytes: float,
        elapsed_s: float,
    ) -> CounterSet:
        """Produce a jittered counter snapshot from true run quantities."""
        work = self._jittered(work_cycles)
        stall = self._jittered(stall_cycles)
        return CounterSet(
            cycles=work + stall,
            stall_cycles=stall,
            instructions=self._jittered(work_cycles * _NOMINAL_IPC),
            llc_misses=self._jittered(mem_cycles / _MISS_PENALTY_CYCLES),
            net_bytes=self._jittered(net_bytes),
            elapsed_s=elapsed_s,
        )

    def read_run(self, result) -> CounterSet:
        """Counter snapshot of a :class:`~repro.hardware.node.NodeRunResult`."""
        return self.read(
            work_cycles=result.true_work_cycles,
            stall_cycles=result.true_stall_cycles,
            mem_cycles=result.true_mem_cycles,
            net_bytes=result.true_net_bytes,
            elapsed_s=result.elapsed_s,
        )
