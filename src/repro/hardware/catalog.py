"""Extended node catalog — beyond the paper's two validated types.

The paper validates on A9 and K10 but states its model covers "most modern
multicore systems, including high-performance Intel Xeon or AMD Opteron
systems, and low-power ARM Cortex-A8, Cortex-A9, Cortex-A15 and Cortex-A57
systems" (Section II-D).  This catalog provides two additional node types
so degree-3+ heterogeneity studies have materials to work with:

* ``A15`` — an ARM Cortex-A15 class board: the A9's big sibling (~3x the
  throughput at ~2.4x the power);
* ``XEOND`` — a Xeon-D class micro-server: a mid-range x86 between the
  wimpy boards and the full-size Opteron.

These are NOT part of the paper's testbed: their parameters are plausible
extrapolations (flagged as such), intended for the library's extension
analyses (``workloads/extended.py`` solves matching demand vectors).  They
are not auto-registered; call :func:`register_catalog` to opt in.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError
from repro.hardware.specs import (
    DvfsPoint,
    NodeSpec,
    PowerProfile,
    register_node_spec,
)
from repro.util.units import GB, GBPS, GHZ, KB, MB

__all__ = ["a15", "xeond", "register_catalog", "CATALOG_NAMES"]

#: Names of the catalog's extension node types.
CATALOG_NAMES: Tuple[str, ...] = ("A15", "XEOND")


def a15() -> NodeSpec:
    """ARM Cortex-A15 class node (extension; not in the paper's testbed)."""
    return NodeSpec(
        name="A15",
        isa="ARMv7-A",
        cores=4,
        dvfs=(
            DvfsPoint(0.6 * GHZ, 0.90),
            DvfsPoint(1.0 * GHZ, 1.00),
            DvfsPoint(1.4 * GHZ, 1.10),
            DvfsPoint(1.8 * GHZ, 1.20),
            DvfsPoint(2.0 * GHZ, 1.25),
        ),
        l1d_bytes_per_core=32 * KB,
        l2_bytes=2 * MB,
        l3_bytes=None,
        memory_bytes=2 * GB,
        memory_type="DDR3L",
        nic_bps=1 * GBPS,
        mem_bandwidth_bytes_per_s=6.0e9,
        power=PowerProfile(
            idle_w=3.2,
            cpu_active_w=6.5,
            cpu_stall_w=3.0,
            memory_w=1.1,
            network_w=0.8,
            nameplate_peak_w=12.0,
        ),
    )


def xeond() -> NodeSpec:
    """Xeon-D class micro-server node (extension; not in the paper's
    testbed)."""
    return NodeSpec(
        name="XEOND",
        isa="x86_64",
        cores=8,
        dvfs=(
            DvfsPoint(1.2 * GHZ, 0.90),
            DvfsPoint(1.7 * GHZ, 1.00),
            DvfsPoint(2.2 * GHZ, 1.10),
        ),
        l1d_bytes_per_core=32 * KB,
        l2_bytes=256 * KB,  # per core
        l3_bytes=12 * MB,
        memory_bytes=32 * GB,
        memory_type="DDR4",
        nic_bps=10 * GBPS,
        mem_bandwidth_bytes_per_s=2.0e10,
        power=PowerProfile(
            idle_w=18.0,
            cpu_active_w=16.0,
            cpu_stall_w=7.5,
            memory_w=3.5,
            network_w=2.0,
            nameplate_peak_w=40.0,
        ),
    )


def register_catalog(*, overwrite: bool = False) -> Tuple[NodeSpec, ...]:
    """Register every catalog node type; returns the registered specs.

    Idempotent when ``overwrite`` is true; otherwise re-registration of an
    already-present name raises, like :func:`register_node_spec` itself.
    """
    specs = (a15(), xeond())
    for spec in specs:
        try:
            register_node_spec(spec, overwrite=overwrite)
        except ConfigurationError:
            if not overwrite:
                raise
    return specs
