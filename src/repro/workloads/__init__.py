"""Workloads: demand abstractions, the paper's six calibrated programs,
trace generation and measurement-driven characterization."""

from repro.workloads.base import ActivityFactors, Workload, WorkloadDemand
from repro.workloads.calibration import (
    BottleneckProfile,
    dynamic_power_target,
    peak_power_target,
    solve_demand,
)
from repro.workloads.suite import (
    BOTTLENECK_PROFILES,
    JOB_SIZES,
    PAPER_DOMAINS,
    PAPER_IPR,
    PAPER_PPR,
    PAPER_UNITS,
    PAPER_VALIDATION_ERRORS,
    PAPER_WORKLOAD_NAMES,
    TRACE_VARIABILITY,
    build_workload,
    paper_workloads,
    workload,
)

__all__ = [
    "ActivityFactors",
    "Workload",
    "WorkloadDemand",
    "BottleneckProfile",
    "solve_demand",
    "peak_power_target",
    "dynamic_power_target",
    "PAPER_WORKLOAD_NAMES",
    "PAPER_PPR",
    "PAPER_IPR",
    "PAPER_DOMAINS",
    "PAPER_UNITS",
    "PAPER_VALIDATION_ERRORS",
    "TRACE_VARIABILITY",
    "BOTTLENECK_PROFILES",
    "JOB_SIZES",
    "build_workload",
    "paper_workloads",
    "workload",
]
