"""The paper's six datacenter workloads, calibrated to its published numbers.

Section II-C selects six programs spanning typical datacenter domains:

========== =================== =================================== ===========
Name        Domain              Work unit (Table 6)                 Job size
========== =================== =================================== ===========
EP          HPC                 random numbers (NPB EP class)       2^25 ops
memcached   Web server          bytes served (memslap driven)       1 MiB
x264        Streaming video     frames encoded (PARSEC)             3000 frames
blacksch.   Financial           options priced (PARSEC)             65536 opts
julius      Speech recognition  audio samples (16 kHz real-time)    160000 smp
RSA-2048    Web security        signature verifications (openssl)   2048 ops
========== =================== =================================== ===========

Calibration targets come straight from the paper:

* ``PAPER_PPR`` — Table 6, performance-to-power ratio per node type at the
  most energy-efficient configuration (the memcached K10 entry "2,68,067"
  is read as 268,067 — Indian digit grouping in the original).
* ``PAPER_IPR`` — Table 7, idle-to-peak power ratio per node type (DPR, EPM
  and LDR in that table are all functions of IPR; see DESIGN.md Section 6).

Bottleneck profiles encode the qualitative characterization the paper gives
in Section III-A: EP, blackscholes and RSA-2048 are core-bound on both
nodes; x264 is memory-bound (and much faster on K10's higher-bandwidth
DDR3); memcached saturates the A9's 100 Mbps NIC but is request-processing
bound on the K10's 1 Gbps link; Julius mixes core and memory demand.
RSA-2048's K10 advantage reflects its ISA's cryptography-friendly
instructions.

``TRACE_VARIABILITY`` parameterises how irregular each program's phase
behaviour is in the simulated testbed; it is the knob that makes the
model-vs-measured validation errors (Table 4) workload-dependent: Julius and
x264 have strongly input-dependent phases (the paper's largest errors, 13%
and 11%) while EP and RSA-2048 are perfectly regular (2-3%).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Mapping, Tuple

from repro.errors import WorkloadError
from repro.hardware.specs import get_node_spec
from repro.workloads.base import Workload
from repro.workloads.calibration import BottleneckProfile, solve_demand

__all__ = [
    "PAPER_WORKLOAD_NAMES",
    "PAPER_PPR",
    "PAPER_IPR",
    "PAPER_DOMAINS",
    "PAPER_UNITS",
    "PAPER_VALIDATION_ERRORS",
    "TRACE_VARIABILITY",
    "BOTTLENECK_PROFILES",
    "JOB_SIZES",
    "build_workload",
    "paper_workloads",
    "workload",
]

#: Canonical workload names, in the paper's table order.
PAPER_WORKLOAD_NAMES: Tuple[str, ...] = (
    "EP",
    "memcached",
    "x264",
    "blackscholes",
    "julius",
    "rsa2048",
)

#: Table 6 — performance-to-power ratio (work units per second per watt).
PAPER_PPR: Mapping[str, Mapping[str, float]] = {
    "EP": {"A9": 6_048_057.0, "K10": 1_414_922.0},
    "memcached": {"A9": 5_224_004.0, "K10": 268_067.0},
    "x264": {"A9": 0.7, "K10": 1.0},
    "blackscholes": {"A9": 11_413.0, "K10": 2_902.0},
    "julius": {"A9": 69_654.0, "K10": 21_390.0},
    "rsa2048": {"A9": 968.0, "K10": 1_091.0},
}

#: Table 7 — idle-to-peak power ratio per workload per node type.
PAPER_IPR: Mapping[str, Mapping[str, float]] = {
    "EP": {"A9": 0.74, "K10": 0.65},
    "memcached": {"A9": 0.83, "K10": 0.89},
    "x264": {"A9": 0.64, "K10": 0.62},
    "blackscholes": {"A9": 0.68, "K10": 0.63},
    "julius": {"A9": 0.70, "K10": 0.62},
    "rsa2048": {"A9": 0.64, "K10": 0.59},
}

#: Table 4 — application domain per workload.
PAPER_DOMAINS: Mapping[str, str] = {
    "EP": "HPC",
    "memcached": "Web Server",
    "x264": "Streaming video",
    "blackscholes": "Financial",
    "julius": "Speech recognition",
    "rsa2048": "Web security",
}

#: Table 6 — throughput unit per workload.
PAPER_UNITS: Mapping[str, str] = {
    "EP": "random no./s",
    "memcached": "bytes/s",
    "x264": "frames/s",
    "blackscholes": "options/s",
    "julius": "samples/s",
    "rsa2048": "verify/s",
}

#: Table 4 — the paper's model-vs-measured validation errors (percent).
PAPER_VALIDATION_ERRORS: Mapping[str, Mapping[str, float]] = {
    "EP": {"time": 3.0, "energy": 10.0},
    "memcached": {"time": 10.0, "energy": 8.0},
    "x264": {"time": 11.0, "energy": 10.0},
    "blackscholes": {"time": 4.0, "energy": 7.0},
    "julius": {"time": 13.0, "energy": 1.0},
    "rsa2048": {"time": 2.0, "energy": 8.0},
}

#: Phase irregularity of each program in the simulated testbed (coefficient
#: of variation of per-phase demand).  Ordered like the paper's validation
#: errors: regular kernels (EP, RSA) near zero, input-dependent programs
#: (Julius, x264, memcached) high.
TRACE_VARIABILITY: Mapping[str, float] = {
    "EP": 0.02,
    "memcached": 0.09,
    "x264": 0.10,
    "blackscholes": 0.04,
    "julius": 0.12,
    "rsa2048": 0.02,
}

#: Relative drift of CPU power activity between the small characterization
#: input and the full input (the working-set growth that inflates cycle
#: demands also shifts the instruction mix, and with it power draw).  This
#: is what decorrelates the paper's time and energy validation errors:
#: e.g. EP's energy error (10%) far exceeds its time error (3%), while
#: Julius shows the opposite (13% vs 1%).
ACTIVITY_SIZE_DRIFT: Mapping[str, float] = {
    "EP": 0.22,
    "memcached": 0.10,
    "x264": 0.10,
    "blackscholes": 0.14,
    "julius": -0.20,
    "rsa2048": 0.18,
}

#: Work units per job (chosen so job service times land in the ranges the
#: paper's response-time figures span: tens of ms for EP on the Fig. 9
#: clusters, seconds for x264).
JOB_SIZES: Mapping[str, float] = {
    "EP": float(2**25),          # random numbers
    "memcached": float(2**20),   # bytes
    "x264": 3_000.0,             # frames
    "blackscholes": 65_536.0,    # options
    "julius": 160_000.0,         # samples (10 s of 16 kHz audio)
    "rsa2048": 2_048.0,          # verifications
}

#: Qualitative per-(workload, node) bottleneck profiles (see module docs).
BOTTLENECK_PROFILES: Mapping[str, Mapping[str, BottleneckProfile]] = {
    "EP": {
        "A9": BottleneckProfile(rho_core=1.0, rho_mem=0.25, rho_io=0.0, mem_factor=0.40, net_factor=0.0),
        "K10": BottleneckProfile(rho_core=1.0, rho_mem=0.25, rho_io=0.0, mem_factor=0.40, net_factor=0.0),
    },
    "memcached": {
        # A9: the 100 Mbps NIC saturates (rho_io = 1); half of the transfer
        # time is the per-request service floor (the paper's 1/lambda_I/O).
        "A9": BottleneckProfile(rho_core=0.85, rho_mem=0.50, rho_io=1.0, mem_factor=0.30, net_factor=0.60, io_service_floor_frac=0.50),
        "K10": BottleneckProfile(rho_core=1.0, rho_mem=0.45, rho_io=0.11, mem_factor=0.30, net_factor=0.80, io_service_floor_frac=0.05),
    },
    "x264": {
        "A9": BottleneckProfile(rho_core=0.55, rho_mem=1.0, rho_io=0.02, mem_factor=0.85, net_factor=0.20),
        "K10": BottleneckProfile(rho_core=0.70, rho_mem=1.0, rho_io=0.005, mem_factor=0.85, net_factor=0.20),
    },
    "blackscholes": {
        "A9": BottleneckProfile(rho_core=1.0, rho_mem=0.35, rho_io=0.0, mem_factor=0.40, net_factor=0.0),
        "K10": BottleneckProfile(rho_core=1.0, rho_mem=0.30, rho_io=0.0, mem_factor=0.35, net_factor=0.0),
    },
    "julius": {
        "A9": BottleneckProfile(rho_core=1.0, rho_mem=0.60, rho_io=0.01, mem_factor=0.50, net_factor=0.10),
        "K10": BottleneckProfile(rho_core=1.0, rho_mem=0.50, rho_io=0.01, mem_factor=0.50, net_factor=0.10),
    },
    "rsa2048": {
        "A9": BottleneckProfile(rho_core=1.0, rho_mem=0.10, rho_io=0.005, mem_factor=0.20, net_factor=0.10),
        "K10": BottleneckProfile(rho_core=1.0, rho_mem=0.10, rho_io=0.005, mem_factor=0.20, net_factor=0.10),
    },
}


def build_workload(name: str) -> Workload:
    """Build one paper workload from the calibration targets.

    Demand vectors are solved fresh on every call; use
    :func:`paper_workloads` for the memoised set.
    """
    if name not in PAPER_WORKLOAD_NAMES:
        raise WorkloadError(
            f"unknown paper workload {name!r}; expected one of {PAPER_WORKLOAD_NAMES}"
        )
    demands = {}
    for node_name, profile in BOTTLENECK_PROFILES[name].items():
        spec = get_node_spec(node_name)
        demands[node_name] = solve_demand(
            spec,
            ppr_target=PAPER_PPR[name][node_name],
            ipr_target=PAPER_IPR[name][node_name],
            profile=profile,
        )
    return Workload(
        name=name,
        domain=PAPER_DOMAINS[name],
        unit=PAPER_UNITS[name],
        ops_per_job=JOB_SIZES[name],
        demands=demands,
    )


@lru_cache(maxsize=1)
def _paper_workloads_cached() -> Dict[str, Workload]:
    return {name: build_workload(name) for name in PAPER_WORKLOAD_NAMES}


def paper_workloads() -> Dict[str, Workload]:
    """All six paper workloads, keyed by canonical name (fresh dict copy)."""
    return dict(_paper_workloads_cached())


def workload(name: str) -> Workload:
    """One paper workload by canonical name (memoised)."""
    loads = _paper_workloads_cached()
    try:
        return loads[name]
    except KeyError:
        raise WorkloadError(
            f"unknown paper workload {name!r}; expected one of {PAPER_WORKLOAD_NAMES}"
        ) from None
