"""Extended workload demands for the catalog node types.

The paper characterizes its six workloads only for A9 and K10.  For the
catalog's extension nodes (A15, XEOND — see
:mod:`repro.hardware.catalog`) this module supplies solved demand vectors
from *estimated* PPR/IPR targets.  The estimates are plausible
interpolations positioned between the two validated nodes (the A15 behaves
like a faster, slightly less power-proportional A9; the Xeon-D like a far
more efficient small Opteron) and are clearly extension material: every
number here is an assumption, not a paper value.

Use :func:`extended_workload` to obtain a paper workload whose demand map
additionally covers the catalog types, enabling degree-3+ heterogeneity
studies:

>>> from repro.hardware.catalog import register_catalog
>>> register_catalog()
>>> w = extended_workload("EP")
>>> sorted(w.node_types())
['A15', 'A9', 'K10', 'XEOND']
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Dict, Mapping

from repro.errors import WorkloadError
from repro.hardware.catalog import a15, xeond
from repro.workloads.base import Workload, WorkloadDemand
from repro.workloads.calibration import BottleneckProfile, solve_demand
from repro.workloads.suite import PAPER_WORKLOAD_NAMES, workload

__all__ = ["EXTENDED_PPR", "EXTENDED_IPR", "EXTENDED_PROFILES", "extended_workload"]

#: Estimated PPR targets for the extension nodes (work units/s per watt).
#: Positioned between the validated A9 and K10 values; the x264 and
#: RSA-2048 entries keep the brawny-node advantages (memory bandwidth,
#: crypto instructions) partially available on the x86 Xeon-D.
EXTENDED_PPR: Mapping[str, Mapping[str, float]] = {
    "EP": {"A15": 5_500_000.0, "XEOND": 2_400_000.0},
    "memcached": {"A15": 2_200_000.0, "XEOND": 900_000.0},
    "x264": {"A15": 0.8, "XEOND": 1.2},
    "blackscholes": {"A15": 11_000.0, "XEOND": 5_000.0},
    "julius": {"A15": 65_000.0, "XEOND": 30_000.0},
    "rsa2048": {"A15": 900.0, "XEOND": 1_200.0},
}

#: Estimated IPR targets for the extension nodes.  The A15 board idles low
#: relative to its loaded draw (embedded SoCs have wide dynamic ranges), so
#: its IPRs sit well below the A9's; the Xeon-D is a small server board and
#: behaves like a scaled-down Opteron.
EXTENDED_IPR: Mapping[str, Mapping[str, float]] = {
    "EP": {"A15": 0.45, "XEOND": 0.68},
    "memcached": {"A15": 0.60, "XEOND": 0.88},
    "x264": {"A15": 0.50, "XEOND": 0.63},
    "blackscholes": {"A15": 0.48, "XEOND": 0.65},
    "julius": {"A15": 0.50, "XEOND": 0.64},
    "rsa2048": {"A15": 0.52, "XEOND": 0.61},
}

#: Bottleneck profiles for the extension nodes (same structure as the
#: validated suite: which resource saturates, and component activity).
EXTENDED_PROFILES: Mapping[str, Mapping[str, BottleneckProfile]] = {
    "EP": {
        "A15": BottleneckProfile(1.0, 0.25, 0.0, 0.40, 0.0),
        "XEOND": BottleneckProfile(1.0, 0.25, 0.0, 0.40, 0.0),
    },
    "memcached": {
        "A15": BottleneckProfile(1.0, 0.45, 0.30, 0.30, 0.70, io_service_floor_frac=0.05),
        "XEOND": BottleneckProfile(1.0, 0.45, 0.05, 0.30, 0.80, io_service_floor_frac=0.02),
    },
    "x264": {
        "A15": BottleneckProfile(0.65, 1.0, 0.01, 0.85, 0.20),
        "XEOND": BottleneckProfile(0.75, 1.0, 0.005, 0.85, 0.20),
    },
    "blackscholes": {
        "A15": BottleneckProfile(1.0, 0.32, 0.0, 0.40, 0.0),
        "XEOND": BottleneckProfile(1.0, 0.30, 0.0, 0.35, 0.0),
    },
    "julius": {
        "A15": BottleneckProfile(1.0, 0.55, 0.01, 0.50, 0.10),
        "XEOND": BottleneckProfile(1.0, 0.50, 0.01, 0.50, 0.10),
    },
    "rsa2048": {
        "A15": BottleneckProfile(1.0, 0.10, 0.005, 0.20, 0.10),
        "XEOND": BottleneckProfile(1.0, 0.10, 0.005, 0.20, 0.10),
    },
}

_SPEC_BUILDERS = {"A15": a15, "XEOND": xeond}


@lru_cache(maxsize=None)
def _extended_demands(name: str) -> Dict[str, WorkloadDemand]:
    demands: Dict[str, WorkloadDemand] = {}
    for node_name, builder in _SPEC_BUILDERS.items():
        demands[node_name] = solve_demand(
            builder(),
            ppr_target=EXTENDED_PPR[name][node_name],
            ipr_target=EXTENDED_IPR[name][node_name],
            profile=EXTENDED_PROFILES[name][node_name],
        )
    return demands


def extended_workload(name: str) -> Workload:
    """A paper workload with demands for the catalog node types added.

    The A9/K10 demands are the calibrated paper values; the A15/XEOND
    demands are extension estimates (see module docs).
    """
    if name not in PAPER_WORKLOAD_NAMES:
        raise WorkloadError(
            f"unknown paper workload {name!r}; expected one of {PAPER_WORKLOAD_NAMES}"
        )
    base = workload(name)
    return replace(base, demands={**base.demands, **_extended_demands(name)})
