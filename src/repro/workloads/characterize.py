"""Measurement-driven workload characterization (paper Figure 1, left side).

The paper's methodology never reads a workload's demands off a data sheet —
it *measures* them: run the program with a smaller input (``P_s``) on one
node of each type, read the hardware counters for the cycle demands, read
the power meter for the energy, and fit the model parameters.  This module
reproduces that pipeline against the simulated testbed:

1. run ``P_s`` on a representative node at the maximal operating point;
2. per-op demands = counter totals / work units
   (work cycles straight from the cycle counters, full memory cycles
   reconstructed from the LLC-miss count, bytes from the NIC counter);
3. the CPU activity factor is fitted so the energy model reproduces the
   *measured* dynamic energy of the characterization run, given the node's
   *measured* component powers and data-sheet memory/NIC utilisation.

The result is a parallel :class:`~repro.workloads.base.Workload` whose
demands are measured, not true — the only inputs the validated model is
allowed to use.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import CalibrationError, MeasurementError
from repro.hardware.counters import CounterSet, PerfReader
from repro.hardware.node import SimulatedNode
from repro.hardware.powermeter import PowerMeter
from repro.hardware.specs import NodeSpec
from repro.util.numerics import clamp
from repro.workloads.base import ActivityFactors, Workload, WorkloadDemand
from repro.workloads.generator import JobTrace, generate_trace

__all__ = [
    "DemandCharacterization",
    "characterize_demand",
    "characterize_workload",
]


@dataclass(frozen=True)
class DemandCharacterization:
    """The measured demand vector plus its measurement provenance."""

    node_type: str
    workload_name: str
    demand: WorkloadDemand
    counters: CounterSet
    measured_dynamic_power_w: float
    ops_measured: float


def characterize_demand(
    workload: Workload,
    node: SimulatedNode,
    meter: PowerMeter,
    perf: PerfReader,
    trace_rng,
    *,
    characterized_spec: Optional[NodeSpec] = None,
    assumed_memory_activity: Optional[float] = None,
    assumed_network_activity: Optional[float] = None,
    min_duration_s: float = 10.0,
) -> DemandCharacterization:
    """Characterize one workload on one node type from measurements.

    Parameters
    ----------
    min_duration_s:
        The small input alone may finish in milliseconds — far too short for
        a ~10 Hz power meter.  Like any careful measurement methodology, the
        characterization *loops* the small input until the run lasts at
        least this long; each repetition reuses the same (small) working
        set, so looping does not change per-op demands.
    characterized_spec:
        The node spec carrying *measured* component powers (from
        :func:`~repro.hardware.microbench.characterize_node_power`).  The
        activity fit must use the same power numbers the model will later
        predict with; defaults to the node's true spec (perfect power
        characterization).
    assumed_memory_activity / assumed_network_activity:
        Data-sheet utilisation of the memory and NIC subsystems while busy
        (the paper derives memory power "from specifications").  Default to
        the workload's true activity — a perfect data sheet.
    """
    spec = characterized_spec if characterized_spec is not None else node.spec
    if spec.name != node.spec.name:
        raise MeasurementError(
            f"characterized spec {spec.name!r} does not match node {node.spec.name!r}"
        )
    true_demand = workload.demand_for(node.spec.name)
    mem_activity = (
        assumed_memory_activity
        if assumed_memory_activity is not None
        else true_demand.activity.memory
    )
    net_activity = (
        assumed_network_activity
        if assumed_network_activity is not None
        else true_demand.activity.network
    )

    if min_duration_s <= 0:
        raise MeasurementError(f"min_duration_s must be positive, got {min_duration_s}")
    ops_small = workload.small_input_ops()
    trace = generate_trace(workload, node.spec.name, ops_small, trace_rng)
    run = node.execute(
        trace,
        true_demand.activity,
        io_service_floor_s_per_op=true_demand.io_service_floor_s,
    )
    repeats = 1
    # Loop the small input until the measurement window is long enough.  The
    # looped run is one long program over the small working set: per-op
    # demands stay at the small-input level (size_reference_ops) and the
    # phase count stays that of a single program run.  The loop count is
    # re-estimated from each run because fixed overheads distort short runs.
    for _ in range(8):
        if run.elapsed_s >= min_duration_s:
            break
        repeats = int(repeats * min_duration_s / run.elapsed_s * 1.1) + 1
        looped = generate_trace(
            workload,
            node.spec.name,
            ops_small * repeats,
            trace_rng,
            size_reference_ops=ops_small,
        )
        run = node.execute(
            looped,
            true_demand.activity,
            io_service_floor_s_per_op=true_demand.io_service_floor_s,
        )
    ops = ops_small * repeats
    counters = perf.read_run(run)
    energy = meter.measure(run.segments)

    # Per-op demand volumes from the counters.
    core_cycles_per_op = counters.work_cycles / ops
    mem_cycles_per_op = counters.mem_cycles_estimate / ops
    io_bytes_per_op = counters.net_bytes / ops

    # Time split implied by the measured demands at the measured operating
    # point (needed to attribute the measured dynamic energy).
    f = run.frequency_hz
    t_core = core_cycles_per_op / (run.cores * f)
    t_mem = mem_cycles_per_op / f
    t_io = max(io_bytes_per_op / (spec.nic_bps / 8.0), true_demand.io_service_floor_s)
    t_op = max(t_core, t_mem, t_io)
    t_stall = max(0.0, t_mem - t_core)

    # Measured dynamic power: meter energy minus the measured idle baseline.
    p_dyn = energy.mean_power_w - spec.power.idle_w
    if p_dyn <= 0:
        raise CalibrationError(
            f"{workload.name} on {spec.name}: measured power does not exceed idle; "
            f"characterization run too short or meter too noisy"
        )

    # Fit the CPU activity factor against the measured component powers.
    scale = spec.cpu_power_scale(run.cores, f)
    fixed = (
        spec.power.memory_w * mem_activity * t_mem
        + spec.power.network_w * net_activity * t_io
    )
    cpu_weighted = scale * (
        spec.power.cpu_active_w * t_core + spec.power.cpu_stall_w * t_stall
    )
    if cpu_weighted <= 0:
        raise CalibrationError(
            f"{workload.name} on {spec.name}: no CPU time measured; cannot fit activity"
        )
    af = clamp((p_dyn * t_op - fixed) / cpu_weighted, 0.0, 1.0)

    demand = WorkloadDemand(
        core_cycles_per_op=core_cycles_per_op,
        mem_cycles_per_op=mem_cycles_per_op,
        io_bytes_per_op=io_bytes_per_op,
        io_service_floor_s=true_demand.io_service_floor_s,
        activity=ActivityFactors(
            cpu_active=af,
            cpu_stall=af,
            memory=mem_activity,
            network=net_activity,
        ),
    )
    return DemandCharacterization(
        node_type=spec.name,
        workload_name=workload.name,
        demand=demand,
        counters=counters,
        measured_dynamic_power_w=p_dyn,
        ops_measured=ops,
    )


def characterize_workload(
    workload: Workload,
    nodes: Mapping[str, SimulatedNode],
    meters: Mapping[str, PowerMeter],
    perf: PerfReader,
    rng_registry,
    *,
    characterized_specs: Optional[Mapping[str, NodeSpec]] = None,
) -> Tuple[Workload, Dict[str, DemandCharacterization]]:
    """Characterize a workload on every node type of a testbed.

    Returns the *measured* workload (same job size, measured demands) and
    the per-type characterization records.
    """
    demands: Dict[str, WorkloadDemand] = {}
    records: Dict[str, DemandCharacterization] = {}
    for node_type, node in sorted(nodes.items()):
        record = characterize_demand(
            workload,
            node,
            meters[node_type],
            perf,
            rng_registry.stream(f"characterize/{workload.name}/{node_type}"),
            characterized_spec=(
                characterized_specs[node_type] if characterized_specs else None
            ),
        )
        demands[node_type] = record.demand
        records[node_type] = record
    measured_workload = replace(workload, demands=demands)
    return measured_workload, records
