"""Calibration solver: paper-published targets -> demand vectors.

The paper characterizes each workload on each node type by direct
measurement (perf counters + Yokogawa power meter).  We do not have the
hardware, but the paper publishes enough derived quantities to invert the
characterization:

* Table 7 gives the idle-to-peak ratio IPR(w, i); with the measured idle
  powers (A9 ~1.8 W, K10 ~45 W) this fixes the per-workload dynamic power
  ``P_dyn = P_idle * (1/IPR - 1)`` and workload peak ``P_peak = P_idle/IPR``.
* Table 6 gives the performance-to-power ratio at the most energy-efficient
  operating point; with ``P_peak`` this fixes the node's peak throughput
  ``ops/s = PPR * P_peak`` and therefore the per-op service time ``t_op``.
* The workload's *bottleneck profile* (which resource saturates, and the
  relative occupancy of the others — known qualitatively from the paper's
  Section III-A discussion) splits ``t_op`` into core, memory and I/O time,
  from which the Table 1 demand parameters follow:

  - ``cycles_core = rho_core * t_op * c_max * f_max``
  - ``cycles_mem  = rho_mem  * t_op * f_max``
  - ``io_bytes    = rho_io   * t_op * nic_bytes_per_s``

* Finally the CPU activity factor is solved from the dynamic-power balance
  ``P_dyn * t_op = P_act*af*t_core + P_stall*af*t_stall + P_mem*mf*t_mem +
  P_net*nf*t_io`` given the memory/network activity factors of the profile.

Every derived quantity is validated; an infeasible target set raises
:class:`~repro.errors.CalibrationError` instead of silently producing a
workload that cannot reproduce the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError
from repro.hardware.specs import NodeSpec
from repro.obs.logs import get_logger
from repro.workloads.base import ActivityFactors, WorkloadDemand

__all__ = ["BottleneckProfile", "solve_demand", "dynamic_power_target", "peak_power_target"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class BottleneckProfile:
    """Relative per-op occupancy of each resource, bottleneck at 1.0.

    ``rho_core`` is the fraction of the per-op service time the cores spend
    executing work cycles, ``rho_mem`` the fraction covered by memory stalls
    and ``rho_io`` the network transfer fraction; ``max(rho) == 1`` because
    the bottleneck resource defines the service time.  ``mem_factor`` and
    ``net_factor`` are the power activity of the memory and NIC subsystems
    while those components are busy.
    """

    rho_core: float
    rho_mem: float
    rho_io: float
    mem_factor: float
    net_factor: float
    io_service_floor_frac: float = 0.0

    def __post_init__(self) -> None:
        for name in ("rho_core", "rho_mem", "rho_io", "mem_factor", "net_factor"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise CalibrationError(f"{name} must be in [0, 1], got {v}")
        peak = max(self.rho_core, self.rho_mem, self.rho_io)
        if abs(peak - 1.0) > 1e-9:
            raise CalibrationError(
                f"bottleneck occupancy must be exactly 1.0, got max rho = {peak}"
            )
        if not 0.0 <= self.io_service_floor_frac <= self.rho_io + 1e-12:
            raise CalibrationError(
                "io_service_floor_frac must be in [0, rho_io]: the request-rate "
                "floor cannot exceed the transfer time at calibration"
            )

    @property
    def bottleneck(self) -> str:
        """Name of the saturated resource."""
        best = max(
            ("core", self.rho_core), ("mem", self.rho_mem), ("io", self.rho_io),
            key=lambda kv: kv[1],
        )
        return best[0]


def peak_power_target(spec: NodeSpec, ipr: float) -> float:
    """Workload peak power implied by an IPR target (watts)."""
    if not 0.0 < ipr < 1.0:
        raise CalibrationError(f"IPR target must be in (0, 1), got {ipr}")
    return spec.power.idle_w / ipr


def dynamic_power_target(spec: NodeSpec, ipr: float) -> float:
    """Workload dynamic power implied by an IPR target (watts)."""
    return peak_power_target(spec, ipr) - spec.power.idle_w


def solve_demand(
    spec: NodeSpec,
    *,
    ppr_target: float,
    ipr_target: float,
    profile: BottleneckProfile,
) -> WorkloadDemand:
    """Solve a :class:`WorkloadDemand` hitting the published PPR and IPR.

    The demand is exact at the node's maximal operating point (all cores at
    ``f_max``): the time model reproduces ``1 / (PPR * P_peak)`` per op and
    the energy model reproduces ``P_dyn = P_idle * (1/IPR - 1)``.
    """
    if ppr_target <= 0:
        raise CalibrationError(f"PPR target must be positive, got {ppr_target}")
    p_peak = peak_power_target(spec, ipr_target)
    p_dyn = p_peak - spec.power.idle_w
    throughput = ppr_target * p_peak  # ops/s at the maximal operating point
    t_op = 1.0 / throughput

    t_core = profile.rho_core * t_op
    t_mem = profile.rho_mem * t_op
    t_io = profile.rho_io * t_op
    t_stall = max(0.0, t_mem - t_core)

    # Demand volumes from the time split (Table 1 parameters).
    core_cycles = t_core * spec.cores * spec.fmax_hz
    mem_cycles = t_mem * spec.fmax_hz
    io_bytes = t_io * (spec.nic_bps / 8.0)
    io_floor = profile.io_service_floor_frac * t_op

    # Power balance: solve the CPU activity factor.
    pw = spec.power
    fixed = pw.memory_w * profile.mem_factor * t_mem + pw.network_w * profile.net_factor * t_io
    cpu_seconds_weighted = pw.cpu_active_w * t_core + pw.cpu_stall_w * t_stall
    if cpu_seconds_weighted <= 0:
        raise CalibrationError(
            f"{spec.name}: profile has no CPU occupancy; cannot balance dynamic power"
        )
    af = (p_dyn * t_op - fixed) / cpu_seconds_weighted
    if af <= 0:
        raise CalibrationError(
            f"{spec.name}: memory/network activity already exceeds the dynamic power "
            f"target ({p_dyn:.3f} W); lower mem_factor/net_factor"
        )
    if af > 1.0 + 1e-9:
        raise CalibrationError(
            f"{spec.name}: required CPU activity factor {af:.3f} exceeds the node's "
            f"measured envelope; the component powers in the NodeSpec are too small "
            f"for a {p_dyn:.3f} W dynamic-power target"
        )
    if af > 1.0:
        logger.debug(
            "%s: activity factor %.12f within rounding tolerance of 1.0; clamping",
            spec.name,
            af,
        )
    logger.debug(
        "%s: calibrated t_op=%.4g s (core %.2f / mem %.2f / io %.2f), af=%.4f",
        spec.name,
        t_op,
        profile.rho_core,
        profile.rho_mem,
        profile.rho_io,
        af,
    )

    return WorkloadDemand(
        core_cycles_per_op=core_cycles,
        mem_cycles_per_op=mem_cycles,
        io_bytes_per_op=io_bytes,
        io_service_floor_s=io_floor,
        activity=ActivityFactors(
            cpu_active=min(af, 1.0),
            cpu_stall=min(af, 1.0),
            memory=profile.mem_factor,
            network=profile.net_factor,
        ),
    )
