"""Synthetic job-trace generation — the testbed's "real programs".

The model sees a workload as a flat demand vector, but real programs are
not flat: they run as a sequence of parallel *phases* whose per-op demands
fluctuate around the mean (input-dependent branches, cache behaviour,
protocol overheads).  The simulated testbed executes these phase traces, and
the difference between the flat model and the structured trace is exactly
what produces the paper's Table 4 model-vs-measured errors.

Two second-order effects are modelled per workload:

* ``variability`` — the coefficient of variation of per-phase demand
  (:data:`repro.workloads.suite.TRACE_VARIABILITY`); irregular programs
  (Julius, x264) straggle more across nodes.
* ``size_sensitivity`` — per-op demands grow slightly with input size
  (working sets leave caches); characterizing on the small input P_s and
  predicting the full run therefore under-estimates demand.

A memslap-style request generator is included for the memcached workload:
fixed key/value sizes, uniformly popular keys, Poisson arrivals — exactly
the load profile the paper drives its memcached server with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = [
    "TracePhase",
    "JobTrace",
    "SIZE_SENSITIVITY",
    "generate_trace",
    "KeyValueRequest",
    "RequestGenerator",
]

#: Relative per-op demand growth per 16x input-size increase.  Characterized
#: runs use the small input (1/16 of a job); these sensitivities are the
#: dominant source of the Table 4 execution-time errors, so their ordering
#: follows the paper's: regular kernels (EP, RSA-2048) barely move, cache-
#: and input-sensitive programs (memcached, x264, Julius) move by ~10%.
SIZE_SENSITIVITY: Mapping[str, float] = {
    "EP": 0.025,
    "memcached": 0.080,
    "x264": 0.095,
    "blackscholes": 0.030,
    "julius": 0.105,
    "rsa2048": 0.012,
}

#: Default number of parallel phases a job is split into.
DEFAULT_PHASES = 24


@dataclass(frozen=True)
class TracePhase:
    """One parallel phase of a job trace: absolute demands for this phase."""

    ops: float
    core_cycles: float
    mem_cycles: float
    io_bytes: float

    def __post_init__(self) -> None:
        if self.ops <= 0:
            raise WorkloadError(f"phase ops must be positive, got {self.ops}")
        if min(self.core_cycles, self.mem_cycles, self.io_bytes) < 0:
            raise WorkloadError("phase demands must be non-negative")


@dataclass(frozen=True)
class JobTrace:
    """A job's execution trace for one node type.

    The trace is the ground truth the simulated node executes; its aggregate
    demands deviate from ``ops * flat demand`` through phase noise and the
    input-size effect.
    """

    workload_name: str
    node_type: str
    ops_total: float
    phases: Tuple[TracePhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError("a trace needs at least one phase")
        ops = sum(p.ops for p in self.phases)
        if not math.isclose(ops, self.ops_total, rel_tol=1e-9):
            raise WorkloadError(
                f"phase ops sum {ops} does not match ops_total {self.ops_total}"
            )

    @property
    def total_core_cycles(self) -> float:
        """Aggregate core work cycles across phases."""
        return sum(p.core_cycles for p in self.phases)

    @property
    def total_mem_cycles(self) -> float:
        """Aggregate memory stall cycles across phases."""
        return sum(p.mem_cycles for p in self.phases)

    @property
    def total_io_bytes(self) -> float:
        """Aggregate network bytes across phases."""
        return sum(p.io_bytes for p in self.phases)


def _size_factor(workload: Workload, ops: float) -> float:
    """Demand inflation of a run of ``ops`` relative to the small input.

    Grows logarithmically for one 16x size step beyond the characterization
    input, then saturates: once the working set has left the caches, making
    the input larger does not make each op more expensive.
    """
    sensitivity = SIZE_SENSITIVITY.get(workload.name, 0.0)
    small = workload.small_input_ops()
    if ops <= small:
        return 1.0
    step = min(1.0, math.log(ops / small) / math.log(16.0))
    return 1.0 + sensitivity * step


def generate_trace(
    workload: Workload,
    node_type: str,
    ops: float,
    rng: np.random.Generator,
    *,
    n_phases: int = DEFAULT_PHASES,
    variability: float | None = None,
    size_reference_ops: float | None = None,
) -> JobTrace:
    """Generate the ground-truth trace of ``ops`` work units on one node type.

    Per-phase demands are lognormally distributed around the (size-inflated)
    calibrated means with coefficient of variation ``variability`` (defaults
    to the workload's entry in
    :data:`repro.workloads.suite.TRACE_VARIABILITY`, falling back to 0).

    ``size_reference_ops`` overrides the input size used for the working-set
    inflation: a characterization run that *loops* a small input processes
    many ops but only ever touches the small input's working set, so its
    per-op demands are those of the small size.
    """
    if ops <= 0:
        raise WorkloadError(f"ops must be positive, got {ops}")
    if n_phases <= 0:
        raise WorkloadError(f"n_phases must be positive, got {n_phases}")
    demand = workload.demand_for(node_type)
    if variability is None:
        from repro.workloads.suite import TRACE_VARIABILITY  # cycle-safe import

        variability = TRACE_VARIABILITY.get(workload.name, 0.0)
    if variability < 0:
        raise WorkloadError(f"variability must be non-negative, got {variability}")
    if size_reference_ops is not None and size_reference_ops <= 0:
        raise WorkloadError("size_reference_ops must be positive")

    factor = _size_factor(
        workload, size_reference_ops if size_reference_ops is not None else ops
    )
    ops_per_phase = ops / n_phases
    if variability > 0:
        sigma = math.sqrt(math.log(1.0 + variability**2))
        mu = -0.5 * sigma * sigma  # unit mean
        noise = rng.lognormal(mean=mu, sigma=sigma, size=(n_phases, 3))
    else:
        noise = np.ones((n_phases, 3))

    phases = tuple(
        TracePhase(
            ops=ops_per_phase,
            core_cycles=ops_per_phase * demand.core_cycles_per_op * factor * noise[i, 0],
            mem_cycles=ops_per_phase * demand.mem_cycles_per_op * factor * noise[i, 1],
            io_bytes=ops_per_phase * demand.io_bytes_per_op * noise[i, 2],
        )
        for i in range(n_phases)
    )
    return JobTrace(
        workload_name=workload.name,
        node_type=node_type,
        ops_total=ops,
        phases=phases,
    )


# ----------------------------------------------------------------------
# memslap-style request generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KeyValueRequest:
    """One memcached request: arrival time, key id, operation, sizes."""

    arrival_s: float
    key: int
    is_get: bool
    key_bytes: int
    value_bytes: int

    @property
    def wire_bytes(self) -> int:
        """Bytes crossing the NIC for this request (both directions)."""
        return self.key_bytes + self.value_bytes


class RequestGenerator:
    """memslap substitute: fixed-size keys/values, uniform popularity.

    The paper drives memcached with memslap "with fixed key-value size and
    uniform popularity" over a 1 Gbps link; this generator reproduces that
    request stream so the memcached trace (and any queueing experiment over
    individual requests) has a faithful open-loop load source.
    """

    def __init__(
        self,
        *,
        rate_rps: float,
        n_keys: int = 10_000,
        key_bytes: int = 16,
        value_bytes: int = 1024,
        get_fraction: float = 0.9,
        rng: np.random.Generator,
    ) -> None:
        if rate_rps <= 0:
            raise WorkloadError(f"request rate must be positive, got {rate_rps}")
        if n_keys <= 0:
            raise WorkloadError(f"key space must be positive, got {n_keys}")
        if key_bytes <= 0 or value_bytes <= 0:
            raise WorkloadError("key/value sizes must be positive")
        if not 0.0 <= get_fraction <= 1.0:
            raise WorkloadError(f"get fraction must be in [0, 1], got {get_fraction}")
        self._rate = rate_rps
        self._n_keys = n_keys
        self._key_bytes = key_bytes
        self._value_bytes = value_bytes
        self._get_fraction = get_fraction
        self._rng = rng

    def generate(self, duration_s: float) -> List[KeyValueRequest]:
        """All requests arriving within ``duration_s`` (Poisson arrivals)."""
        if duration_s <= 0:
            raise WorkloadError(f"duration must be positive, got {duration_s}")
        n_expected = self._rate * duration_s
        n_draw = int(n_expected + 6 * math.sqrt(n_expected) + 16)
        gaps = self._rng.exponential(1.0 / self._rate, size=n_draw)
        times = np.cumsum(gaps)
        while times[-1] < duration_s:  # pragma: no cover - rare tail top-up
            extra = self._rng.exponential(1.0 / self._rate, size=n_draw)
            times = np.concatenate([times, times[-1] + np.cumsum(extra)])
        times = times[times < duration_s]
        keys = self._rng.integers(0, self._n_keys, size=len(times))
        gets = self._rng.random(len(times)) < self._get_fraction
        return [
            KeyValueRequest(
                arrival_s=float(t),
                key=int(k),
                is_get=bool(g),
                key_bytes=self._key_bytes,
                value_bytes=self._value_bytes,
            )
            for t, k, g in zip(times, keys, gets)
        ]

    def to_trace_ops(self, requests: Sequence[KeyValueRequest]) -> float:
        """Total work units (bytes served) represented by ``requests``."""
        return float(sum(r.wire_bytes for r in requests))
