"""Workload abstractions: per-node demand vectors and workload definitions.

The paper's methodology (Section II) characterizes each program once per node
type into a small demand vector — core work cycles, memory stall cycles and
network I/O volume per unit of work — plus per-component power activity.  The
time–energy model of Table 2 then predicts execution time and energy for any
cluster configuration from those vectors.

Work units are program-specific (paper Table 6): EP counts random numbers,
memcached bytes, x264 frames, blackscholes options, Julius audio samples and
RSA-2048 signature verifications.  A *job* is a fixed number of work units
(``ops_per_job``); datacenter load is expressed in jobs (Section II-B's
M/D/1 model).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Tuple

from repro.errors import WorkloadError
from repro.hardware.specs import NodeSpec

__all__ = ["ActivityFactors", "WorkloadDemand", "Workload"]


@dataclass(frozen=True)
class ActivityFactors:
    """Per-component power activity of a workload on one node type.

    Each factor is in [0, 1] and scales the node's measured per-component
    power envelope (:class:`repro.hardware.specs.PowerProfile`).  The paper
    measures per-workload power directly; these factors are how our
    calibration reconciles per-workload dynamic power with the node's
    micro-benchmarked component maxima.
    """

    cpu_active: float
    cpu_stall: float
    memory: float
    network: float

    def __post_init__(self) -> None:
        for name in ("cpu_active", "cpu_stall", "memory", "network"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    f"activity factor {name} must be in [0, 1], got {value}"
                )


@dataclass(frozen=True)
class WorkloadDemand:
    """Characterized demand of one workload on one node type.

    Attributes
    ----------
    core_cycles_per_op:
        Total CPU work cycles per work unit, aggregated over all active
        cores; the time model divides by ``cores * f`` (scale-out workloads
        parallelize linearly inside a node — paper Section II-D).
    mem_cycles_per_op:
        Memory stall cycles per work unit, expressed in core cycles; the time
        model divides by ``f`` (paper Table 2: T_mem = cycles_mem / f).
    io_bytes_per_op:
        Network bytes transferred per work unit (DMA-overlapped with CPU).
    io_service_floor_s:
        Per-op I/O service floor, the ``1/lambda_I/O`` term of Table 2: even
        infinitely fast links cannot beat the device's request service rate.
    activity:
        Per-component power activity factors.
    """

    core_cycles_per_op: float
    mem_cycles_per_op: float
    io_bytes_per_op: float
    activity: ActivityFactors
    io_service_floor_s: float = 0.0

    def __post_init__(self) -> None:
        if self.core_cycles_per_op < 0 or self.mem_cycles_per_op < 0:
            raise WorkloadError("cycle demands must be non-negative")
        if self.core_cycles_per_op == 0 and self.mem_cycles_per_op == 0 and self.io_bytes_per_op == 0:
            raise WorkloadError("demand vector is empty: no core, memory or I/O work")
        if self.io_bytes_per_op < 0 or self.io_service_floor_s < 0:
            raise WorkloadError("I/O demands must be non-negative")

    def scaled(self, factor: float) -> "WorkloadDemand":
        """Return a demand vector with all per-op volumes scaled.

        Used to derive perturbed/synthetic workloads in sensitivity studies;
        activity factors are intensities, not volumes, and stay unchanged.
        """
        if factor <= 0:
            raise WorkloadError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            core_cycles_per_op=self.core_cycles_per_op * factor,
            mem_cycles_per_op=self.mem_cycles_per_op * factor,
            io_bytes_per_op=self.io_bytes_per_op * factor,
            io_service_floor_s=self.io_service_floor_s * factor,
        )


@dataclass(frozen=True)
class Workload:
    """A datacenter program with per-node-type characterized demands.

    Parameters
    ----------
    name:
        Program name (e.g. ``"EP"``).
    domain:
        Application domain, as in the paper's Table 4 (e.g. ``"HPC"``).
    unit:
        The work unit counted by throughput and PPR (e.g. ``"random no."``).
    ops_per_job:
        Work units per job; one job is the unit of arrival in the M/D/1
        utilisation model.
    demands:
        Mapping from node-type name to :class:`WorkloadDemand`.
    small_input_fraction:
        Size of the characterization run (the paper's ``P_s``, "program P
        with smaller input size") relative to the full job.
    """

    name: str
    domain: str
    unit: str
    ops_per_job: float
    demands: Mapping[str, WorkloadDemand] = field(default_factory=dict)
    small_input_fraction: float = 1.0 / 16.0

    def __post_init__(self) -> None:
        if self.ops_per_job <= 0:
            raise WorkloadError(f"{self.name}: ops_per_job must be positive")
        if not 0 < self.small_input_fraction <= 1:
            raise WorkloadError(f"{self.name}: small_input_fraction must be in (0, 1]")
        if not self.demands:
            raise WorkloadError(f"{self.name}: no per-node demands supplied")
        # Freeze the mapping so the dataclass is effectively immutable.
        object.__setattr__(self, "demands", dict(self.demands))

    def demand_for(self, node: str | NodeSpec) -> WorkloadDemand:
        """The demand vector for a node type (by name or spec)."""
        name = node.name if isinstance(node, NodeSpec) else node
        try:
            return self.demands[name]
        except KeyError:
            raise WorkloadError(
                f"workload {self.name!r} is not characterized for node type "
                f"{name!r}; available: {sorted(self.demands)}"
            ) from None

    def node_types(self) -> Tuple[str, ...]:
        """Node types this workload is characterized for, sorted."""
        return tuple(sorted(self.demands))

    def supports(self, node: str | NodeSpec) -> bool:
        """True when this workload has a demand vector for ``node``."""
        name = node.name if isinstance(node, NodeSpec) else node
        return name in self.demands

    def with_job_size(self, ops_per_job: float) -> "Workload":
        """A copy of this workload with a different job size."""
        return replace(self, ops_per_job=ops_per_job)

    def small_input_ops(self) -> float:
        """Work units of the characterization (small input, P_s) run."""
        return self.ops_per_job * self.small_input_fraction

    def __str__(self) -> str:
        return f"{self.name} [{self.domain}] ({self.unit}; {self.ops_per_job:g} ops/job)"
