"""Dynamic configuration adaptation over time-varying load.

The paper determines a *static* mapping and notes that "dynamic adaptation
of the workload during the execution of a program complements our approach
and can be used in conjunction" (Section I).  This extension quantifies
that complement at the cluster level: given a time-varying utilisation
trace (datacenters follow strong diurnal patterns), compare

* a **static** configuration provisioned for peak load, against
* a **dynamic** policy that, in every interval, activates the cheapest
  candidate configuration able to carry that interval's load.

Both serve identical work; the energy difference is the value of
adaptation.  The candidate set defaults to the paper's 1 kW budget mixes,
so the result reads as "how much of the wimpy mixes' efficiency can a
switchable cluster actually harvest".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.budget import budget_mixes
from repro.cluster.configuration import ClusterConfiguration
from repro.core.metrics import LinearPowerCurve
from repro.errors import ModelError
from repro.model.batched import config_constants
from repro.util.rng import DEFAULT_SEED
from repro.workloads.base import Workload

__all__ = [
    "TRACE_FLOOR",
    "diurnal_trace",
    "scaled_candidates",
    "AdaptationInterval",
    "AdaptationResult",
    "simulate_adaptation",
    "IntervalTailCheck",
    "adaptation_tail_percentiles",
]


#: Smallest demand fraction :func:`diurnal_trace` ever emits.  Gaussian
#: noise around a low trough can push an interval to (or below) zero, and a
#: zero-demand interval makes every downstream arrival process degenerate
#: (lambda = 0 breaks queue constructors and divides in the schedulers), so
#: the floor is a small positive epsilon rather than 0.
TRACE_FLOOR = 1e-3


def diurnal_trace(
    *,
    n_intervals: int = 24,
    low: float = 0.15,
    high: float = 0.85,
    peak_hour: float = 14.0,
    rng: Optional[np.random.Generator] = None,
    noise: float = 0.03,
) -> np.ndarray:
    """A day of per-interval demand as a fraction of peak capacity.

    A sinusoid between ``low`` and ``high`` peaking at ``peak_hour``, with
    optional Gaussian noise — the canonical diurnal shape of interactive
    datacenter load.  Values are clamped into ``[TRACE_FLOOR, 1]``: noise
    must never produce a zero-load interval (a degenerate lambda = 0
    arrival process downstream).
    """
    if not 0.0 < low <= high <= 1.0:
        raise ModelError(f"need 0 < low <= high <= 1, got ({low}, {high})")
    if n_intervals <= 0:
        raise ModelError(f"n_intervals must be positive, got {n_intervals}")
    hours = np.arange(n_intervals) * (24.0 / n_intervals)
    phase = (hours - peak_hour) / 24.0 * 2.0 * math.pi
    base = low + (high - low) * 0.5 * (1.0 + np.cos(phase))
    if rng is not None and noise > 0:
        base = base + rng.normal(0.0, noise, size=n_intervals)
    return np.clip(base, TRACE_FLOOR, 1.0)


def scaled_candidates(
    budget_w: float = 1000.0,
    *,
    a9_step: int = 16,
    k10_step: int = 2,
) -> List[ClusterConfiguration]:
    """Candidate configurations for adaptation: mixes AND shrunk clusters.

    Real adaptation does not just swap between full-budget mixes — it powers
    nodes down at low demand.  This grid covers every (a, k) combination on
    the given steps whose nameplate fits the budget (switch overhead
    included), from a single node group up to the full budget mixes.
    """
    from repro.cluster.budget import PowerBudget

    budget = PowerBudget(budget_w)
    a_max = budget.max_nodes("A9", with_switch=True)
    k_max = budget.max_nodes("K10")
    candidates: List[ClusterConfiguration] = []
    for a in range(0, a_max + 1, a9_step):
        for k in range(0, k_max + 1, k10_step):
            if a == 0 and k == 0:
                continue
            config = ClusterConfiguration.mix({"A9": a, "K10": k})
            if budget.fits(config):
                candidates.append(config)
    return candidates


@dataclass(frozen=True)
class AdaptationInterval:
    """One interval's decision and energy accounting."""

    demand_fraction: float
    chosen_label: str
    utilisation: float
    power_w: float


@dataclass(frozen=True)
class AdaptationResult:
    """Energy comparison of static vs dynamic configuration."""

    workload_name: str
    interval_s: float
    static_label: str
    static_energy_j: float
    dynamic_energy_j: float
    intervals: Tuple[AdaptationInterval, ...]

    @property
    def savings_fraction(self) -> float:
        """Energy saved by adaptation relative to the static cluster."""
        return 1.0 - self.dynamic_energy_j / self.static_energy_j

    @property
    def switches(self) -> int:
        """Number of configuration changes across the trace."""
        labels = [iv.chosen_label for iv in self.intervals]
        return sum(1 for a, b in zip(labels, labels[1:]) if a != b)


def simulate_adaptation(
    workload: Workload,
    demand_trace: Sequence[float],
    *,
    candidates: Optional[Sequence[ClusterConfiguration]] = None,
    interval_s: float = 3600.0,
    switching_energy_j: float = 0.0,
) -> AdaptationResult:
    """Serve a demand trace statically vs with per-interval adaptation.

    ``demand_trace`` gives each interval's required throughput as a
    fraction of the *static* (most capable) candidate's peak throughput.
    The dynamic policy picks, per interval, the lowest-power candidate
    whose capacity covers the demand; ``switching_energy_j`` charges each
    configuration change (state migration, node power cycling).
    """
    if interval_s <= 0:
        raise ModelError(f"interval must be positive, got {interval_s}")
    demands = np.asarray(demand_trace, dtype=float)
    if demands.ndim != 1 or demands.size == 0:
        raise ModelError("demand trace must be a non-empty 1-D sequence")
    if np.any(demands < 0) or np.any(demands > 1):
        raise ModelError("demand fractions must lie in [0, 1]")

    configs = list(candidates) if candidates is not None else budget_mixes(1000.0)
    if not configs:
        raise ModelError("need at least one candidate configuration")
    # One constants-cache lookup per candidate replaces a full scalar model
    # build: rate and the linear power curve's endpoints are exactly the
    # cached (rate, idle, idle + dynamic) triple.
    rates = []
    curves = []
    for c in configs:
        rate, idle_w, dyn_w = config_constants(workload, c)
        rates.append(rate)
        curves.append(LinearPowerCurve(idle_w, idle_w + dyn_w))
    static_idx = int(np.argmax(rates))
    static_rate = rates[static_idx]
    static_curve = curves[static_idx]

    intervals: List[AdaptationInterval] = []
    static_energy = 0.0
    dynamic_energy = 0.0
    previous_label: Optional[str] = None
    for demand in demands:
        required_ops = float(demand) * static_rate
        static_energy += static_curve.power_w(float(demand)) * interval_s

        # Cheapest candidate that covers the demand.
        best: Optional[Tuple[float, int, float]] = None  # (power, idx, util)
        for idx, (rate, curve) in enumerate(zip(rates, curves)):
            if rate + 1e-9 < required_ops:
                continue
            utilisation = min(required_ops / rate, 1.0)
            power = curve.power_w(utilisation)
            if best is None or power < best[0]:
                best = (power, idx, utilisation)
        assert best is not None  # the static candidate always qualifies
        power, idx, utilisation = best
        label = configs[idx].label()
        dynamic_energy += power * interval_s
        if previous_label is not None and label != previous_label:
            dynamic_energy += switching_energy_j
        previous_label = label
        intervals.append(
            AdaptationInterval(
                demand_fraction=float(demand),
                chosen_label=label,
                utilisation=utilisation,
                power_w=power,
            )
        )
    return AdaptationResult(
        workload_name=workload.name,
        interval_s=interval_s,
        static_label=configs[static_idx].label(),
        static_energy_j=static_energy,
        dynamic_energy_j=dynamic_energy,
        intervals=tuple(intervals),
    )


@dataclass(frozen=True)
class IntervalTailCheck:
    """Simulated tail latency of one adaptation interval."""

    interval_index: int
    chosen_label: str
    utilisation: float
    service_time_s: float
    analytic_p95_s: float
    simulated_p95_s: float
    ci_lo_s: float
    ci_hi_s: float

    @property
    def agrees(self) -> bool:
        """Whether the analytic p95 lies inside the simulated CI."""
        return self.ci_lo_s <= self.analytic_p95_s <= self.ci_hi_s


def adaptation_tail_percentiles(
    workload: Workload,
    result: AdaptationResult,
    *,
    candidates: Optional[Sequence[ClusterConfiguration]] = None,
    n_jobs: int = 10_000,
    n_reps: int = 25,
    level: float = 0.99,
    seed: int = DEFAULT_SEED,
) -> Tuple[IntervalTailCheck, ...]:
    """Simulated 95th-percentile response time of every adaptation interval.

    The adaptation policy picks configurations on *energy* alone; this
    check quantifies what the choices cost in tail latency.  Each interval's
    chosen configuration serves its load as an M/D/1 queue at the interval's
    utilisation; the Monte-Carlo engine simulates it and the analytic p95 is
    checked against the simulated confidence interval.  ``candidates`` must
    be the same set handed to :func:`simulate_adaptation` (it defaults to
    the paper's 1 kW budget mixes, like the simulation itself).

    Intervals sharing (configuration, utilisation) are simulated once;
    near-idle intervals (utilisation below 0.1%) carry no queueing and are
    reported with the bare service time.
    """
    from repro.core.response import _effective_utilisation
    from repro.model.time_model import execution_time
    from repro.queueing.mc import MonteCarloQueue
    from repro.queueing.md1 import MD1Queue

    configs = list(candidates) if candidates is not None else budget_mixes(1000.0)
    by_label = {c.label(): c for c in configs}
    missing = {iv.chosen_label for iv in result.intervals} - set(by_label)
    if missing:
        raise ModelError(
            f"adaptation trace chose configurations not in the candidate "
            f"set: {sorted(missing)}"
        )
    tp_cache = {
        label: execution_time(workload, config)
        for label, config in by_label.items()
    }
    checks: List[IntervalTailCheck] = []
    cell_cache: dict[Tuple[str, float], Tuple[float, float, float, float]] = {}
    for i, iv in enumerate(result.intervals):
        tp = tp_cache[iv.chosen_label]
        if iv.utilisation < 1e-3:
            # No meaningful queueing: response time is the service time.
            checks.append(
                IntervalTailCheck(i, iv.chosen_label, iv.utilisation, tp, tp, tp, tp, tp)
            )
            continue
        key = (iv.chosen_label, round(iv.utilisation, 9))
        if key not in cell_cache:
            u = _effective_utilisation(iv.utilisation)
            analytic = MD1Queue.from_utilisation(u, tp).p95_response_s()
            ci = (
                MonteCarloQueue.from_utilisation(u, tp, seed=seed)
                .run(n_jobs, n_reps)
                .percentile_ci(95.0, level=level)
            )
            cell_cache[key] = (analytic, ci.mean, ci.lo, ci.hi)
        analytic, mean, lo, hi = cell_cache[key]
        checks.append(
            IntervalTailCheck(
                interval_index=i,
                chosen_label=iv.chosen_label,
                utilisation=iv.utilisation,
                service_time_s=tp,
                analytic_p95_s=analytic,
                simulated_p95_s=mean,
                ci_lo_s=lo,
                ci_hi_s=hi,
            )
        )
    return tuple(checks)
