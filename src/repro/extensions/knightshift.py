"""KnightShift-style server-level heterogeneity baseline.

The paper positions inter-node heterogeneity against *server-level*
heterogeneity à la KnightShift (Wong & Annavaram, MICRO 2012 / HPCA 2014):
each brawny server gets a low-power companion ("knight") that serves the
load alone below a capability threshold while the primary sleeps.  This
module implements that baseline so the paper's approach has the comparator
its Related Work section discusses:

* :class:`KnightShiftCurve` — the two-regime power-vs-utilisation curve of
  a knight-equipped server (strongly sub-linear at low load);
* :func:`knightshift_node` — a K10 primary paired with an A9-class knight;
* :func:`compare_with_internode` — cluster-level EPM/PPR comparison of a
  KnightShift fleet against the paper's inter-node heterogeneous mixes.

The comparison reproduces the related-work tension: KnightShift wins the
proportionality metrics at low utilisation (its whole point), while the
paper's inter-node mixes win PPR whenever the wimpy node's
performance-per-watt beats the brawny node's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.cluster.configuration import ClusterConfiguration
from repro.core.metrics import PowerCurve, PPRCurve, ProportionalityReport, analyze_curve
from repro.core.proportionality import power_curve as internode_power_curve
from repro.core.proportionality import ppr_curve as internode_ppr_curve
from repro.errors import ModelError
from repro.hardware.specs import get_node_spec
from repro.model.energy_model import power_draw
from repro.model.time_model import cluster_service_rate
from repro.workloads.base import Workload

__all__ = [
    "KnightShiftCurve",
    "knightshift_node",
    "KnightShiftCluster",
    "compare_with_internode",
]


@dataclass(frozen=True)
class KnightShiftCurve(PowerCurve):
    """Power curve of a server with a low-power knight companion.

    Below ``knight_capability`` (the fraction of the primary's peak
    throughput the knight can sustain) the knight serves alone while the
    primary draws only ``primary_sleep_w``.  Above it, the primary takes
    over (its usual linear-offset curve) and the idle knight contributes
    ``knight_idle_w``.
    """

    primary_idle_w: float
    primary_peak_w: float
    knight_idle_w: float
    knight_peak_w: float
    knight_capability: float
    primary_sleep_w: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.knight_capability < 1.0:
            raise ModelError(
                f"knight capability must be in (0, 1), got {self.knight_capability}"
            )
        if self.primary_peak_w < self.primary_idle_w or self.knight_peak_w < self.knight_idle_w:
            raise ModelError("peak power below idle power")
        if min(self.primary_idle_w, self.knight_idle_w, self.primary_sleep_w) < 0:
            raise ModelError("negative power")

    @property
    def idle_w(self) -> float:
        """Idle draw: knight idling, primary asleep."""
        return self.knight_idle_w + self.primary_sleep_w

    @property
    def peak_w(self) -> float:
        """Peak draw: primary flat out, knight idle (hand-off complete)."""
        return self.primary_peak_w + self.knight_idle_w

    def power_w(self, utilisation: float) -> float:
        self._check_u(utilisation)
        u = utilisation
        if u <= self.knight_capability:
            knight_load = u / self.knight_capability
            return (
                self.primary_sleep_w
                + self.knight_idle_w
                + knight_load * (self.knight_peak_w - self.knight_idle_w)
            )
        return self.knight_idle_w + self.primary_idle_w + u * (
            self.primary_peak_w - self.primary_idle_w
        )


def knightshift_node(
    workload: Workload,
    *,
    primary: str = "K10",
    knight: str = "A9",
    sleep_w: float = 0.5,
) -> KnightShiftCurve:
    """A knight-equipped brawny server for one workload.

    The knight's capability is the ratio of the two nodes' peak service
    rates for this workload; both per-workload peak powers come from the
    calibrated model.
    """
    primary_cfg = ClusterConfiguration.mix({primary: 1})
    knight_cfg = ClusterConfiguration.mix({knight: 1})
    primary_draw = power_draw(workload, primary_cfg)
    knight_draw = power_draw(workload, knight_cfg)
    capability = cluster_service_rate(workload, knight_cfg) / cluster_service_rate(
        workload, primary_cfg
    )
    if capability >= 1.0:
        raise ModelError(
            f"{knight} outperforms {primary} on {workload.name}; a knight must be "
            f"the slower node"
        )
    return KnightShiftCurve(
        primary_idle_w=primary_draw.idle_w,
        primary_peak_w=primary_draw.peak_w,
        knight_idle_w=knight_draw.idle_w,
        knight_peak_w=knight_draw.peak_w,
        knight_capability=capability,
        primary_sleep_w=sleep_w,
    )


@dataclass(frozen=True)
class KnightShiftCluster:
    """A fleet of identical knight-equipped servers.

    Load is spread evenly, so the fleet's normalised power curve equals the
    single server's and its throughput scales with the server count.
    """

    curve: KnightShiftCurve
    n_servers: int
    peak_throughput_per_server: float

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ModelError("need at least one server")
        if self.peak_throughput_per_server <= 0:
            raise ModelError("peak throughput must be positive")

    def power_w(self, utilisation: float) -> float:
        """Fleet power at a fleet-wide utilisation."""
        return self.n_servers * self.curve.power_w(utilisation)

    def report(self) -> ProportionalityReport:
        """Table 3 metrics of the fleet (same as the single server's)."""
        return analyze_curve(self.curve)

    def ppr_curve(self) -> PPRCurve:
        """Fleet PPR curve (knight hand-off included in the power side)."""
        return PPRCurve(
            peak_throughput_ops_per_s=self.n_servers * self.peak_throughput_per_server,
            power_curve=_ScaledCurve(self.curve, self.n_servers),
        )


@dataclass(frozen=True)
class _ScaledCurve(PowerCurve):
    """A power curve multiplied by a constant server count."""

    base: PowerCurve
    factor: int

    @property
    def idle_w(self) -> float:
        return self.factor * self.base.idle_w

    @property
    def peak_w(self) -> float:
        return self.factor * self.base.peak_w

    def power_w(self, utilisation: float) -> float:
        return self.factor * self.base.power_w(utilisation)


def compare_with_internode(
    workload: Workload,
    *,
    budget_w: float = 1000.0,
    internode_mix: Dict[str, int] | None = None,
    grid: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 1.0),
) -> Dict[str, Dict[str, float]]:
    """EPM and PPR of a KnightShift fleet vs an inter-node mix.

    Both fleets fit the same nameplate budget: the KnightShift fleet packs
    as many knight-equipped K10s as the budget allows (primary + knight
    nameplates), the inter-node mix defaults to the paper's 64 A9 : 8 K10.
    Returns per-approach {"epm": ..., "ppr@u": ...} entries.
    """
    curve = knightshift_node(workload)
    primary_spec = get_node_spec("K10")
    knight_spec = get_node_spec("A9")
    per_server_nameplate = (
        primary_spec.power.nameplate_peak_w + knight_spec.power.nameplate_peak_w
    )
    n_servers = int(budget_w // per_server_nameplate)
    if n_servers <= 0:
        raise ModelError(f"budget {budget_w} W fits no knight-equipped server")
    fleet = KnightShiftCluster(
        curve=curve,
        n_servers=n_servers,
        peak_throughput_per_server=cluster_service_rate(
            workload, ClusterConfiguration.mix({"K10": 1})
        ),
    )

    mix = ClusterConfiguration.mix(internode_mix or {"A9": 64, "K10": 8})
    mix_report = analyze_curve(internode_power_curve(workload, mix))
    mix_ppr = internode_ppr_curve(workload, mix)
    fleet_ppr = fleet.ppr_curve()

    out: Dict[str, Dict[str, float]] = {
        "knightshift": {"epm": fleet.report().epm, "servers": float(n_servers)},
        "internode": {"epm": mix_report.epm, "servers": float(mix.total_nodes)},
    }
    for u in grid:
        out["knightshift"][f"ppr@{u:.0%}"] = fleet_ppr.ppr_at(u)
        out["internode"][f"ppr@{u:.0%}"] = mix_ppr.ppr_at(u)
    return out
