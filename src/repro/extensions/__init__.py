"""Extensions beyond the paper's core analysis.

* :mod:`repro.extensions.knightshift` — the server-level-heterogeneity
  baseline the paper's Related Work positions itself against.
* :mod:`repro.extensions.dynamic` — per-interval configuration adaptation
  over diurnal load (the complement the paper's introduction defers to).
"""

from repro.extensions.dynamic import (
    AdaptationInterval,
    AdaptationResult,
    IntervalTailCheck,
    adaptation_tail_percentiles,
    diurnal_trace,
    scaled_candidates,
    simulate_adaptation,
)
from repro.extensions.knightshift import (
    KnightShiftCluster,
    KnightShiftCurve,
    compare_with_internode,
    knightshift_node,
)

__all__ = [
    "KnightShiftCurve",
    "KnightShiftCluster",
    "knightshift_node",
    "compare_with_internode",
    "diurnal_trace",
    "scaled_candidates",
    "AdaptationInterval",
    "AdaptationResult",
    "simulate_adaptation",
    "IntervalTailCheck",
    "adaptation_tail_percentiles",
]
