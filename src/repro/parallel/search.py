"""Parallel configuration search: partition the space, race the chunks.

The exhaustive search (:func:`repro.cluster.search.recommend_exhaustive`)
scores the whole configuration space in one broadcasted pass; its memory
and time both scale with the space size, which is the product of per-type
choices.  This front-end partitions the space along the *first* type's
DVFS frequencies — each chunk pins that type to one frequency (sub-spaces
are plain :class:`~repro.cluster.configuration.TypeSpace` objects, so
every chunk reuses the serial batched pass unchanged) — and takes the
best feasible winner across chunks under the serial search's own
``(energy, then time)`` tie-break.

Chunks overlap only on configurations where the first type is absent;
those duplicates score identically in every chunk, so the cross-chunk
minimum equals the serial winner whenever that winner is unique under
``(energy_j, tp_s)``.  ``evaluated_configs`` reports the closed-form
space size (:func:`~repro.cluster.configuration.count_configurations`),
matching the serial report exactly.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.cluster.budget import PowerBudget
from repro.cluster.configuration import TypeSpace, count_configurations
from repro.cluster.search import Recommendation, recommend_exhaustive
from repro.errors import ModelError
from repro.obs.tracing import span
from repro.parallel.pool import resolve_workers, run_tasks
from repro.workloads.base import Workload

__all__ = ["recommend_parallel"]


def partition_spaces(spaces: Sequence[TypeSpace]) -> List[List[TypeSpace]]:
    """Split a configuration space into sub-spaces along the first type's
    frequencies.

    Deterministic in the space alone: chunk ``i`` pins the first type to
    its ``i``-th frequency (ascending DVFS-table order) and leaves every
    other type's space untouched.  Each chunk still contains the
    first-type-absent configurations — an overlap, not a gap, which the
    winner fold tolerates because duplicated configurations score
    identically everywhere.
    """
    if not spaces:
        raise ModelError("no type spaces supplied")
    first = spaces[0]
    rest = list(spaces[1:])
    return [
        [dataclasses.replace(first, frequencies_hz=(f,))] + rest
        for f in first.frequencies_hz
    ]


def _search_chunk(
    workload: Workload,
    sub_spaces: List[TypeSpace],
    deadline_s: float,
    budget: Optional[PowerBudget],
) -> Optional[Recommendation]:
    """Top-level (hence picklable) worker task: search one sub-space."""
    return recommend_exhaustive(
        workload, sub_spaces, deadline_s=deadline_s, budget=budget
    )


def recommend_parallel(
    workload: Workload,
    spaces: Sequence[TypeSpace],
    *,
    deadline_s: float,
    budget: Optional[PowerBudget] = None,
    workers: Optional[int] = None,
) -> Optional[Recommendation]:
    """Exhaustive recommendation with the space searched across workers.

    Same contract as :func:`~repro.cluster.search.recommend_exhaustive`
    (including ``strategy="exhaustive"`` and the closed-form
    ``evaluated_configs``), parallelised over frequency-pinned chunks of
    the first type's space.  Worker-count invariant: the partition and the
    winner fold depend only on the space, so any ``workers`` value returns
    the same recommendation.
    """
    if deadline_s <= 0:
        raise ModelError(f"deadline must be positive, got {deadline_s}")
    chunks = partition_spaces(spaces)
    w = resolve_workers(workers)
    with span(
        "parallel.search.recommend",
        workload=workload.name,
        chunks=len(chunks),
        workers=w,
    ):
        results = run_tasks(
            [(_search_chunk, (workload, sub, deadline_s, budget)) for sub in chunks],
            workers=w,
        )
    best: Optional[Recommendation] = None
    for rec in results:
        if rec is None:
            continue
        assert isinstance(rec, Recommendation)
        if best is None or (rec.evaluation.energy_j, rec.evaluation.tp_s) < (
            best.evaluation.energy_j,
            best.evaluation.tp_s,
        ):
            best = rec
    if best is None:
        return None
    return Recommendation(
        evaluation=best.evaluation,
        deadline_s=deadline_s,
        evaluated_configs=count_configurations(spaces),
        strategy="exhaustive",
    )
