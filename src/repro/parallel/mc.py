"""Parallel Monte-Carlo replications: fan ``MonteCarloQueue.run`` across cores.

The MC engine already gives every replication its own generator, spawned
as stream ``r`` of ``SeedSequence(seed).spawn(n_reps)`` — stream identity
depends only on the root seed and the *total* replication count.  Cutting
``range(n_reps)`` into contiguous chunks and shipping each chunk to a
worker therefore reproduces the serial run exactly: each worker calls
:meth:`~repro.queueing.mc.MonteCarloQueue.run_slice` (the same reduction
code the serial path runs) on its slice, and the parent reassembles the
per-replication arrays positionally.  No float is recomputed, reordered
or re-reduced, so the assembled :class:`~repro.queueing.mc.ReplicatedResult`
is **bit-identical at any worker count** — the contract
``tests/parallel/test_mc_parallel.py`` and the hypothesis invariants pin.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import QueueingError
from repro.obs.tracing import span
from repro.parallel.pool import (
    chunk_ranges,
    default_chunks,
    resolve_workers,
    run_tasks,
)
from repro.queueing.mc import (
    TRACKED_PERCENTILES,
    MonteCarloQueue,
    ReplicatedResult,
    SliceStats,
)

__all__ = ["run_parallel"]


def _mc_slice_task(
    queue: MonteCarloQueue, n_jobs: int, n_reps: int, start: int, stop: int
) -> SliceStats:
    """Top-level (hence picklable) worker task: one replication slice."""
    return queue.run_slice(n_jobs, n_reps, start, stop)


def run_parallel(
    queue: MonteCarloQueue,
    n_jobs: int,
    n_reps: int,
    *,
    workers: Optional[int] = None,
    chunks: Optional[int] = None,
) -> ReplicatedResult:
    """``queue.run(n_jobs, n_reps)`` fanned out across worker processes.

    ``chunks`` overrides the submission granularity (default: a few chunks
    per worker, see :data:`~repro.parallel.pool.DEFAULT_CHUNKS_PER_WORKER`);
    the chunking never affects the result, only the load balance.
    """
    if n_jobs <= 0:
        raise QueueingError(f"n_jobs must be positive, got {n_jobs}")
    if n_reps <= 0:
        raise QueueingError(f"n_reps must be positive, got {n_reps}")
    w = resolve_workers(workers)
    n_chunks = default_chunks(n_reps, w) if chunks is None else int(chunks)
    ranges = chunk_ranges(n_reps, n_chunks)

    with span("parallel.mc.run", n_jobs=n_jobs, n_reps=n_reps,
              workers=w, chunks=len(ranges)):
        slices = run_tasks(
            [(_mc_slice_task, (queue, n_jobs, n_reps, a, b)) for a, b in ranges],
            workers=w,
        )

    pct = np.empty((len(TRACKED_PERCENTILES), n_reps))
    mean_resp = np.empty(n_reps)
    mean_wait = np.empty(n_reps)
    util = np.empty(n_reps)
    busy = np.empty(n_reps)
    idle = np.empty(n_reps)
    spans = np.empty(n_reps)
    warmup = 0
    for s in slices:
        assert isinstance(s, SliceStats)
        sel = slice(s.start, s.stop)
        pct[:, sel] = s.response_percentiles_s
        mean_resp[sel] = s.mean_response_s
        mean_wait[sel] = s.mean_wait_s
        util[sel] = s.utilisation
        busy[sel] = s.busy_time_s
        idle[sel] = s.idle_time_s
        spans[sel] = s.span_s
        warmup = s.warmup_jobs
    return ReplicatedResult(
        n_jobs=n_jobs,
        n_reps=n_reps,
        warmup_jobs=warmup,
        arrival_rate=queue.arrival_rate,
        response_percentiles_s=pct,
        mean_response_s=mean_resp,
        mean_wait_s=mean_wait,
        utilisation=util,
        busy_time_s=busy,
        idle_time_s=idle,
        span_s=spans,
    )
