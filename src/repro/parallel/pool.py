"""Process-pool fan-out core shared by every parallel front-end.

The engines in this repository are deliberately deterministic: Monte-Carlo
replication ``r`` always consumes stream ``r`` of a spawned
``SeedSequence``, and a scheduler shard always derives its seed from the
root seed and its shard index.  That makes parallelism an *execution*
detail — the work decomposition is fixed by the problem, never by the
worker count — so this module only has to solve the mechanical half:

* :func:`resolve_workers` — normalise a ``--workers`` value (``None``/``1``
  = in-process, ``0`` = one worker per available CPU);
* :func:`chunk_ranges` — deterministic contiguous chunking of ``n`` items;
* :func:`run_tasks` — submit picklable ``(fn, args)`` tasks to a
  :class:`~concurrent.futures.ProcessPoolExecutor` and return results in
  submission order, folding each worker's metrics back into the parent.

Metrics round-trip
------------------
The :class:`~repro.obs.metrics.MetricsRegistry` is process-global, so an
increment made inside a worker process lands in the *worker's* copy of the
registry and evaporates with the process.  Worse, under the ``fork`` start
method the child inherits whatever totals the parent had already
accumulated, so naively snapshotting the child would double-count the
parent's history on merge.  :func:`run_tasks` therefore wraps every task:
the worker resets its inherited registry, sets ``enabled`` from the
parent's flag at submission time, runs the task, and ships a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` home alongside the
result; the parent merges the snapshots in submission order (counters and
histograms add, gauges keep the max), so a parallel run reports the same
``repro_mc_jobs_simulated_total`` / dispatch counts as a serial one —
pinned by ``tests/parallel/test_mc_parallel.py``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.metrics import get_registry

__all__ = [
    "DEFAULT_CHUNKS_PER_WORKER",
    "resolve_workers",
    "chunk_ranges",
    "default_chunks",
    "run_tasks",
]

#: Chunks submitted per worker when the caller does not pick a chunk
#: count: a few chunks per worker amortise per-task pickling while
#: keeping the pool's tail (the last chunk finishing alone) short.
DEFAULT_CHUNKS_PER_WORKER = 4

#: One parallel task: a picklable top-level callable plus its arguments.
Task = Tuple[Callable, Tuple]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count request into a concrete positive count.

    ``None`` and ``1`` mean in-process execution; ``0`` means one worker
    per available CPU (``os.cpu_count()``); any other positive integer is
    taken literally.  Negative counts are an error.
    """
    if workers is None:
        return 1
    w = int(workers)
    if w == 0:
        return max(1, os.cpu_count() or 1)
    if w < 0:
        raise ReproError(f"workers must be >= 0 (0 = all CPUs), got {workers}")
    return w


def chunk_ranges(n: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``chunks`` contiguous ``(start, stop)``
    spans, sizes differing by at most one, earlier spans larger.

    Deterministic in ``(n, chunks)`` alone — the decomposition never
    depends on timing or worker count, which is half of the bit-identity
    story (the other half is per-item seeding).
    """
    if n < 0:
        raise ReproError(f"cannot chunk a negative item count: {n}")
    if chunks < 1:
        raise ReproError(f"need at least one chunk, got {chunks}")
    chunks = min(chunks, n) or 1
    base, extra = divmod(n, chunks)
    out: List[Tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        width = base + (1 if i < extra else 0)
        if width == 0:
            break
        out.append((start, start + width))
        start += width
    return out


def default_chunks(n_items: int, workers: int) -> int:
    """The default chunk count for ``n_items`` across ``workers``."""
    return max(1, min(n_items, workers * DEFAULT_CHUNKS_PER_WORKER))


def _run_task_in_worker(fn: Callable, args: Tuple, instrument: bool):
    """Worker-side task wrapper: isolate and snapshot the metrics registry.

    Under ``fork`` the child starts with a *copy* of the parent's registry
    totals; reset first so the snapshot covers exactly this task's
    increments and the parent's history is never double-counted on merge.
    """
    registry = get_registry()
    registry.reset()
    registry.enabled = bool(instrument)
    try:
        result = fn(*args)
        snapshot = registry.snapshot() if instrument else None
    finally:
        registry.enabled = False
    return result, snapshot


def run_tasks(
    tasks: Sequence[Task],
    *,
    workers: Optional[int] = None,
    instrument: Optional[bool] = None,
) -> List[object]:
    """Execute ``tasks`` and return their results in submission order.

    With a resolved worker count of 1 the tasks simply run in-process (no
    pool, no pickling, metrics recorded directly); otherwise they are
    submitted to a :class:`ProcessPoolExecutor` and each worker's metrics
    snapshot is merged into the parent registry once all results are in.
    ``instrument`` defaults to the parent registry's ``enabled`` flag at
    call time.

    Every ``fn`` must be a picklable top-level callable and every argument
    picklable — closures cannot cross the process boundary (the service
    samplers in :mod:`repro.queueing.mc` are callable classes for exactly
    this reason).
    """
    tasks = list(tasks)
    if not tasks:
        return []
    w = resolve_workers(workers)
    registry = get_registry()
    if instrument is None:
        instrument = registry.enabled
    if w == 1:
        return [fn(*args) for fn, args in tasks]

    results: List[object] = [None] * len(tasks)
    snapshots: List[Optional[dict]] = [None] * len(tasks)
    with ProcessPoolExecutor(max_workers=min(w, len(tasks))) as pool:
        futures = {
            pool.submit(_run_task_in_worker, fn, args, instrument): i
            for i, (fn, args) in enumerate(tasks)
        }
        for future in as_completed(futures):
            i = futures[future]
            results[i], snapshots[i] = future.result()
    if instrument:
        # Submission order, not completion order: gauge merges take a max
        # (order-free), but a deterministic fold order costs nothing and
        # keeps any future merge semantics reproducible.
        for snapshot in snapshots:
            if snapshot:
                registry.merge(snapshot)
    return results
