"""Sharded scheduler trace replay: partition the fleet, merge the telemetry.

Unlike MC replications, one scheduler replay is a single coupled
simulation — every job placement depends on every queue — so it cannot be
split without changing the answer.  What *can* be made worker-invariant
is the decomposition itself: a **shard** plan is a pure function of
``(fleet, n_shards, seed)``, never of the worker count.  Shard ``i``
replays the trace against its slice of the node fleet with its own
derived seed and its own proportional slice of the reference capacity
(each shard sees the same demand *fraction*, which against its smaller
fleet means the same per-node load), and the merge is a deterministic
fold in shard-index order.  Executing the shards on 1, 2 or 8 workers
therefore yields bit-identical merged results — the invariance
``tests/parallel/test_sharding.py`` and the hypothesis suite pin.

The decomposition models a *partitioned* cluster (each shard dispatches
over its own sub-fleet), which is how scale-out clusters are actually
operated at size; a sharded replay is a different — coarser-grained —
experiment than the global single-dispatcher replay, not an approximation
of it.  Telemetry merges exactly: energies, arrivals, boots and
``served_ops`` add; response percentiles are recomputed from the pooled
raw responses (shards return them via ``collect_responses``); the
proportionality score is recomputed from the summed per-interval served
work and power against the summed reference peak.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.configuration import ClusterConfiguration
from repro.core.proportionality import DynamicProportionality, dynamic_proportionality
from repro.errors import ReproError
from repro.obs.tracing import span
from repro.parallel.pool import resolve_workers, run_tasks
from repro.scheduler.autoscaler import PredictiveAutoscaler, build_ladder
from repro.scheduler.engine import ClusterScheduler, ScheduleResult, TimelineSample
from repro.scheduler.powerstate import TransitionCosts
from repro.util.rng import DEFAULT_SEED
from repro.workloads.base import Workload

__all__ = [
    "shard_counts",
    "shard_config",
    "shard_seed",
    "sharded_replay",
    "merge_shard_results",
]


def shard_counts(count: int, n_shards: int) -> List[int]:
    """Deterministically split ``count`` nodes across ``n_shards``.

    Earlier shards get the remainder: shard ``i`` receives
    ``count // n_shards + (1 if i < count % n_shards else 0)`` nodes, so
    the split is a pure function of ``(count, n_shards)`` and the shard
    sizes sum exactly to ``count``.
    """
    if count < 0:
        raise ReproError(f"node count must be non-negative, got {count}")
    if n_shards < 1:
        raise ReproError(f"need at least one shard, got {n_shards}")
    base, extra = divmod(count, n_shards)
    return [base + (1 if i < extra else 0) for i in range(n_shards)]


def shard_config(
    config: ClusterConfiguration, index: int, n_shards: int
) -> Optional[ClusterConfiguration]:
    """Shard ``index``'s slice of a configuration, or None when empty.

    Every node group is split with :func:`shard_counts`; groups whose
    slice is empty are dropped, and a shard left with no nodes at all
    returns None (more shards than nodes — the caller skips it).
    """
    if not 0 <= index < n_shards:
        raise ReproError(f"shard index {index} out of range for {n_shards} shards")
    groups = []
    for g in config.groups:
        count = shard_counts(g.count, n_shards)[index]
        if count:
            groups.append(dataclasses.replace(g, count=count))
    if not groups:
        return None
    return ClusterConfiguration(groups=tuple(groups))


def shard_seed(seed: int, index: int, n_shards: int) -> int:
    """A per-shard seed, derived deterministically from the root seed.

    Hashing the shard identity (index *and* shard count) into the seed
    keeps shard arrival streams statistically independent while staying a
    pure function of the plan — the same derivation idiom as the
    per-cell seeds in :mod:`repro.experiments.validation_mc`.
    """
    key = f"{seed}|shard|{index}|{n_shards}"
    digest = hashlib.blake2s(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _replay_shard(
    workload: Workload,
    policy: str,
    trace: np.ndarray,
    interval_s: float,
    fixed_config: Optional[ClusterConfiguration],
    candidates: Optional[Tuple[ClusterConfiguration, ...]],
    costs: Union[TransitionCosts, Dict[str, TransitionCosts], None],
    park_state: str,
    seed: int,
    arrival_model: Optional[str] = None,
    service_model: Optional[object] = None,
) -> ScheduleResult:
    """Top-level (hence picklable) worker task: replay one shard's fleet.

    Autoscaled shards rebuild their own ladder from the shard-sliced
    candidates — dominance filtering and rung order are pure functions of
    the candidate set, so the ladder is identical wherever it is built.
    """
    if (fixed_config is None) == (candidates is None):
        raise ReproError("shard needs exactly one of fixed_config or candidates")
    if candidates is not None:
        ladder = build_ladder(workload, candidates)
        scaler = PredictiveAutoscaler(
            ladder,
            trace,
            ladder[-1].capacity_ops,
            target_utilisation=0.98,
            lookahead=0,
        )
        engine = ClusterScheduler(
            workload,
            policy,
            trace,
            interval_s=interval_s,
            autoscaler=scaler,
            transition_costs=costs,
            park_state=park_state,
            seed=seed,
            arrival_model=arrival_model,
            service_model=service_model,
        )
    else:
        engine = ClusterScheduler(
            workload,
            policy,
            trace,
            interval_s=interval_s,
            config=fixed_config,
            transition_costs=costs,
            park_state=park_state,
            seed=seed,
            arrival_model=arrival_model,
            service_model=service_model,
        )
    return engine.run(collect_responses=True)


def _merged_label(labels: Sequence[str]) -> str:
    """One rung label for a merged interval: the common label, or a join."""
    unique = list(dict.fromkeys(labels))
    return unique[0] if len(unique) == 1 else " | ".join(labels)


def merge_shard_results(
    results: Sequence[ScheduleResult], *, interval_s: float
) -> ScheduleResult:
    """Fold per-shard :class:`ScheduleResult`\\ s into one cluster-wide result.

    The fold is deterministic in shard-index order: additive telemetry
    (energies, arrivals, boots, ``served_ops``, power) sums; per-interval
    utilisation is the active-node-weighted mean (recovering pooled busy
    seconds over pooled active capacity); response percentiles come from
    the pooled raw responses; the proportionality score is recomputed
    from the merged per-interval series against the summed reference peak.
    """
    if not results:
        raise ReproError("need at least one shard result to merge")
    n_intervals = len(results[0].timeline)
    for r in results:
        if len(r.timeline) != n_intervals:
            raise ReproError("shard timelines disagree on interval count")
        if r.responses_s is None:
            raise ReproError("shard results must carry responses_s to merge")

    timeline: List[TimelineSample] = []
    u_ref: List[float] = []
    p_trace: List[float] = []
    ref_cap = sum(r.reference_capacity_ops for r in results)
    ref_peak = sum(r.reference_peak_w for r in results)
    for k in range(n_intervals):
        samples = [r.timeline[k] for r in results]
        n_active = sum(s.n_active for s in samples)
        power = sum(s.power_w for s in samples)
        served = sum(s.served_ops for s in samples)
        busy_active = sum(s.utilisation * s.n_active for s in samples)
        timeline.append(
            TimelineSample(
                t_s=samples[0].t_s,
                demand_fraction=samples[0].demand_fraction,
                rung_label=_merged_label([s.rung_label for s in samples]),
                n_active=n_active,
                n_powered=sum(s.n_powered for s in samples),
                utilisation=busy_active / n_active if n_active else 0.0,
                power_w=power,
                arrivals=sum(s.arrivals for s in samples),
                served_ops=served,
            )
        )
        u_ref.append(served / (ref_cap * interval_s))
        p_trace.append(power)

    responses = np.concatenate([r.responses_s for r in results])
    if responses.size:
        p50, p95, p99 = (
            float(np.percentile(responses, q)) for q in (50.0, 95.0, 99.0)
        )
        mean_resp = float(responses.mean())
    else:
        p50 = p95 = p99 = mean_resp = 0.0

    node_stats = tuple(
        dataclasses.replace(stats, name=f"s{i}/{stats.name}")
        for i, r in enumerate(results)
        for stats in r.node_stats
    )
    proportionality: Optional[DynamicProportionality] = None
    if sum(u_ref) > 0:
        proportionality = dynamic_proportionality(
            u_ref, p_trace, ref_peak, interval_s=interval_s
        )
    return ScheduleResult(
        workload_name=results[0].workload_name,
        policy_name=results[0].policy_name,
        interval_s=interval_s,
        horizon_s=results[0].horizon_s,
        reference_capacity_ops=ref_cap,
        reference_peak_w=ref_peak,
        jobs_arrived=sum(r.jobs_arrived for r in results),
        jobs_completed=sum(r.jobs_completed for r in results),
        p50_s=p50,
        p95_s=p95,
        p99_s=p99,
        mean_response_s=mean_resp,
        baseline_energy_j=sum(r.baseline_energy_j for r in results),
        dynamic_energy_j=sum(r.dynamic_energy_j for r in results),
        transition_energy_j=sum(r.transition_energy_j for r in results),
        boots=sum(r.boots for r in results),
        shutdowns=sum(r.shutdowns for r in results),
        node_stats=node_stats,
        timeline=tuple(timeline),
        proportionality=proportionality,
        responses_s=responses,
    )


def sharded_replay(
    workload: Workload,
    policy: str,
    demand_trace: Sequence[float],
    *,
    n_shards: int,
    workers: Optional[int] = None,
    config: Optional[ClusterConfiguration] = None,
    candidates: Optional[Sequence[ClusterConfiguration]] = None,
    interval_s: float = 30.0,
    transition_costs: Union[TransitionCosts, Dict[str, TransitionCosts], None] = None,
    park_state: str = "auto",
    seed: int = DEFAULT_SEED,
    arrival_model: Optional[str] = None,
    service_model: Optional[object] = None,
) -> ScheduleResult:
    """Replay a demand trace against a fleet partitioned into ``n_shards``.

    Exactly one of ``config`` (fixed-mix shards) or ``candidates``
    (each shard autoscales its own sliced ladder) must be given.  The
    shard plan — fleet slices, per-shard seeds, merge order — depends
    only on ``(n_shards, seed)``; ``workers`` only chooses how many
    processes execute the plan, so the merged result is bit-identical at
    any worker count.  Shards that receive no nodes (more shards than
    nodes) are skipped.

    ``arrival_model``/``service_model`` pass through to each shard's
    :class:`~repro.scheduler.engine.ClusterScheduler` (each shard holds
    its own model instance, reset at run start, so regime state never
    leaks across shards or workers); prefer an arrival-model *name* here
    so the task tuple stays cheap to pickle.
    """
    if (config is None) == (candidates is None):
        raise ReproError("provide exactly one of config= or candidates=")
    if n_shards < 1:
        raise ReproError(f"need at least one shard, got {n_shards}")
    trace = np.asarray(demand_trace, dtype=float)
    w = resolve_workers(workers)

    tasks = []
    for i in range(n_shards):
        if config is not None:
            shard_fixed = shard_config(config, i, n_shards)
            shard_cands: Optional[Tuple[ClusterConfiguration, ...]] = None
            if shard_fixed is None:
                continue
        else:
            shard_fixed = None
            sliced = []
            for c in candidates:
                sc = shard_config(c, i, n_shards)
                if sc is not None and sc not in sliced:
                    sliced.append(sc)
            if not sliced:
                continue
            shard_cands = tuple(sliced)
        tasks.append(
            (
                _replay_shard,
                (
                    workload,
                    policy,
                    trace,
                    float(interval_s),
                    shard_fixed,
                    shard_cands,
                    transition_costs,
                    park_state,
                    shard_seed(seed, i, n_shards),
                    arrival_model,
                    service_model,
                ),
            )
        )
    if not tasks:
        raise ReproError("sharding left no shard with any nodes")
    with span(
        "parallel.sharding.replay",
        policy=policy,
        workload=workload.name,
        shards=len(tasks),
        workers=w,
    ):
        results = run_tasks(tasks, workers=w)
    return merge_shard_results(
        [r for r in results if isinstance(r, ScheduleResult)],
        interval_s=float(interval_s),
    )
