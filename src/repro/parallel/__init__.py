"""Multi-core parallel execution layer.

Fans the repository's deterministic engines out across worker processes
without changing a single bit of their output:

* :mod:`repro.parallel.pool` — the process-pool core: worker resolution,
  deterministic chunking, ordered task execution, and the metrics
  round-trip that folds worker-process counters back into the parent
  registry;
* :mod:`repro.parallel.mc` — Monte-Carlo replications distributed by
  slicing the ``SeedSequence.spawn`` streams (bit-identical at any
  worker count);
* :mod:`repro.parallel.sharding` — scheduler trace replay with the node
  fleet partitioned into shards (the shard plan is a pure function of
  the fleet and seed; workers only execute it);
* :mod:`repro.parallel.search` — exhaustive configuration search with
  the space partitioned along the first type's DVFS frequencies.

The design rule throughout: **work decomposition is simulation
semantics, worker count is execution placement.**  Every decomposition
(replication slices, fleet shards, space chunks) is derived from the
problem and the root seed alone, so results never depend on how many
processes happened to execute them — the contract
``tests/properties/test_parallel_invariants.py`` pins.
"""

from repro.parallel.mc import run_parallel
from repro.parallel.pool import (
    DEFAULT_CHUNKS_PER_WORKER,
    chunk_ranges,
    default_chunks,
    resolve_workers,
    run_tasks,
)
from repro.parallel.search import recommend_parallel
from repro.parallel.sharding import (
    merge_shard_results,
    shard_config,
    shard_counts,
    shard_seed,
    sharded_replay,
)

__all__ = [
    "DEFAULT_CHUNKS_PER_WORKER",
    "chunk_ranges",
    "default_chunks",
    "resolve_workers",
    "run_tasks",
    "run_parallel",
    "recommend_parallel",
    "merge_shard_results",
    "shard_config",
    "shard_counts",
    "shard_seed",
    "sharded_replay",
]
