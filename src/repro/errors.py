"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CalibrationError",
    "ModelError",
    "QueueingError",
    "MeasurementError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid cluster configuration was constructed or requested.

    Raised for out-of-range node counts, core counts, or operating
    frequencies, and for malformed heterogeneous mixes (e.g. duplicate node
    types in one configuration).
    """


class CalibrationError(ReproError):
    """The calibration database is inconsistent or incomplete.

    Raised when a (workload, node-type) pair has no calibrated demand vector,
    or when derived quantities fail their internal sanity checks (negative
    dynamic power, zero throughput, ...).
    """


class ModelError(ReproError):
    """The time–energy model was evaluated on invalid inputs."""


class QueueingError(ReproError):
    """A queueing computation was requested outside its domain.

    The most common cause is an unstable system (utilisation >= 1), for which
    waiting times diverge.
    """


class MeasurementError(ReproError):
    """The simulated testbed was driven incorrectly.

    Raised, for example, when a power-meter trace is requested before any
    samples were collected, or when a counter snapshot interval is empty.
    """


class WorkloadError(ReproError):
    """A workload definition or job trace is malformed."""
