"""Event-driven, trace-replaying cluster scheduling engine.

The engine replays a per-interval demand trace against a pool of
*individual* heterogeneous nodes: jobs arrive as a Poisson process whose
rate follows the trace (or a bursty/flash-crowd
:class:`~repro.queueing.processes.IntervalArrivals` model — see
``arrival_model``), a :class:`~repro.scheduler.policies.DispatchPolicy`
places each job on a node, and (optionally) an
:class:`~repro.scheduler.autoscaler.Autoscaler` re-targets the active
configuration at every control tick, with node power states and transition
costs handled by :class:`~repro.scheduler.powerstate.PowerStateMachine`.

Simulation design
-----------------
Per-node FIFO queues admit the same lazy event treatment the vectorised
Monte-Carlo engine (:mod:`repro.queueing.mc`) exploits via the Lindley
recursion: a node's whole future is its clearing time ``free_at``, so

* *arrivals* are the only events processed in time order — assignment
  updates ``free_at`` and the job's completion time in O(1);
* *completions* are lazy: a deque of completion times popped against
  "now" whenever a policy asks for the queue length;
* *busy time in a window* is exact without event lists:
  ``busy_up_to(T) = assigned_service - max(0, free_at - T)`` (the pending
  backlog always drains contiguously), which gives per-interval
  utilisation and dynamic energy by differencing two marks;
* *control* happens at interval boundaries: the autoscaler picks a rung,
  the engine activates/drains/parks nodes through their power-state
  machines, and per-interval telemetry is sampled.

Per-node constants (service rate, busy dynamic power, idle power) come
from :func:`repro.model.batched.operating_point_constants` — the same
memoised cache behind the sweep engine and the offline oracle, so engine
energies are directly comparable to both.

Energy accounting
-----------------
``baseline_energy_j`` integrates each node's power-state baseline (idle
draw while powered, ``off_w`` while off); ``transition_energy_j`` is the
lump boot/shutdown charges; ``dynamic_energy_j`` charges each node's busy
dynamic power for the busy time realised inside the horizon.  The offline
oracle charges exactly the same quantities for the work it models, minus
every transition and parked-idle cost — which is precisely the gap the
scheduling experiment measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.configuration import ClusterConfiguration
from repro.core.metrics import LinearPowerCurve, PPRCurve
from repro.core.proportionality import DynamicProportionality, dynamic_proportionality
from repro.errors import ReproError
from repro.model.batched import operating_point_constants
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.queueing.mc import BatchServiceSampler
from repro.queueing.processes import IntervalArrivals, make_interval_arrivals
from repro.scheduler.autoscaler import Autoscaler, Rung
from repro.scheduler.policies import DispatchPolicy, make_policy
from repro.scheduler.powerstate import (
    NodePowerState,
    PowerStateMachine,
    TransitionCosts,
)
from repro.util.rng import DEFAULT_SEED, RngRegistry
from repro.workloads.base import Workload

__all__ = ["ClusterScheduler", "NodeStats", "TimelineSample", "ScheduleResult"]


class _Node:
    """One schedulable node: queue state, power state, and constants.

    Implements the read-only node protocol the dispatch policies rely on
    (see :mod:`repro.scheduler.policies`).
    """

    __slots__ = (
        "name",
        "index",
        "spec_name",
        "rate",
        "busy_dyn_w",
        "idle_w",
        "nameplate_w",
        "service_time_s",
        "window_s",
        "costs",
        "off_w",
        "psm",
        "free_at",
        "available_from",
        "assigned_service_s",
        "jobs",
        "draining",
        "park_off_pref",
        "in_dispatch",
        "busy_mark",
        "baseline_mark",
        "_completions",
        "_ppr",
    )

    def __init__(
        self,
        name: str,
        index: int,
        spec_name: str,
        rate: float,
        busy_dyn_w: float,
        idle_w: float,
        nameplate_w: float,
        ops_per_job: float,
        window_s: float,
        costs: TransitionCosts,
        off_w: float,
    ) -> None:
        self.name = name
        self.index = index
        self.spec_name = spec_name
        self.rate = rate
        self.busy_dyn_w = busy_dyn_w
        self.idle_w = idle_w
        self.nameplate_w = nameplate_w
        self.service_time_s = ops_per_job / rate
        self.window_s = window_s
        self.costs = costs
        self.off_w = off_w
        self.psm: Optional[PowerStateMachine] = None
        self.free_at = 0.0
        self.available_from = 0.0
        self.assigned_service_s = 0.0
        self.jobs = 0
        self.draining = False
        self.park_off_pref = False
        self.in_dispatch = False
        self.busy_mark = 0.0
        self.baseline_mark = 0.0
        self._completions: deque = deque()
        self._ppr = PPRCurve(rate, LinearPowerCurve(idle_w, idle_w + busy_dyn_w))

    # -- policy protocol -------------------------------------------------
    def backlog_s(self, now: float) -> float:
        return max(0.0, max(self.free_at, self.available_from) - now)

    def queue_len(self, now: float) -> int:
        done = self._completions
        while done and done[0] <= now:
            done.popleft()
        return len(done)

    def utilisation_estimate(self, now: float) -> float:
        return min(self.backlog_s(now) / self.window_s, 1.0)

    def ppr_at(self, u: float) -> float:
        return self._ppr.ppr_at(min(max(u, 1e-6), 1.0))

    # -- engine-side state -----------------------------------------------
    def assign(self, t: float, service_s: Optional[float] = None) -> float:
        """Append a job arriving at ``t``; returns its completion time.

        ``service_s`` overrides this job's service time (the engine's
        ``service_model`` multipliers); None keeps the node's
        deterministic ``service_time_s`` exactly."""
        dur = self.service_time_s if service_s is None else service_s
        start = max(t, self.free_at, self.available_from)
        done = start + dur
        self.free_at = done
        self.assigned_service_s += dur
        self.jobs += 1
        self._completions.append(done)
        return done

    def busy_up_to(self, until: float) -> float:
        """Busy seconds realised in ``[0, until]``.

        Exact while the pending backlog drains contiguously (always true,
        except across a boot gap, where it under-counts by at most the
        boot latency); clamped non-negative for that edge.
        """
        return max(0.0, self.assigned_service_s - max(0.0, self.free_at - until))

    def ensure_psm(self, initial: NodePowerState) -> PowerStateMachine:
        if self.psm is None:
            self.psm = PowerStateMachine(
                self.idle_w, self.costs, off_w=self.off_w, initial=initial, t0=0.0
            )
        return self.psm

    def activate(self, t: float) -> None:
        self.draining = False
        if self.psm is None:
            self.ensure_psm(NodePowerState.ACTIVE)
            self.available_from = t
        else:
            self.available_from = self.psm.request_active(t)

    def deactivate(self, t: float, park_off: bool) -> None:
        self.park_off_pref = park_off
        if self.psm is None:
            # Initial placement: the node simply starts parked, no charge.
            self.ensure_psm(NodePowerState.OFF if park_off else NodePowerState.IDLE)
            return
        self.psm.advance(t)
        if self.psm.state in (NodePowerState.ACTIVE, NodePowerState.BOOTING):
            # Pre-schedule the park for the moment the backlog clears —
            # a drained node must not burn idle power until the next
            # control tick happens to notice it.
            t_park = max(t, self.free_at, self.available_from)
            if park_off:
                self.psm.request_off(t_park)
            else:
                self.psm.request_idle(t_park)
            self.draining = self.free_at > t


@dataclass(frozen=True)
class NodeStats:
    """Per-node outcome of one schedule run."""

    name: str
    spec_name: str
    jobs: int
    busy_s: float
    utilisation: float
    energy_j: float
    boots: int
    shutdowns: int
    final_state: str


@dataclass(frozen=True)
class TimelineSample:
    """Telemetry of one control interval."""

    t_s: float
    demand_fraction: float
    rung_label: str
    n_active: int
    n_powered: int
    utilisation: float
    power_w: float
    arrivals: int
    #: Operations served inside the interval (busy seconds x node rate,
    #: summed over the pool).  Dividing by ``reference_capacity_ops *
    #: interval_s`` recovers the normalised utilisation the
    #: proportionality scoring consumes — kept raw so shard timelines
    #: merge by plain addition (:mod:`repro.parallel.sharding`).
    served_ops: float = 0.0


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one trace replay."""

    workload_name: str
    policy_name: str
    interval_s: float
    horizon_s: float
    reference_capacity_ops: float
    reference_peak_w: float
    jobs_arrived: int
    jobs_completed: int
    p50_s: float
    p95_s: float
    p99_s: float
    mean_response_s: float
    baseline_energy_j: float
    dynamic_energy_j: float
    transition_energy_j: float
    boots: int
    shutdowns: int
    node_stats: Tuple[NodeStats, ...]
    timeline: Tuple[TimelineSample, ...]
    proportionality: Optional[DynamicProportionality]
    #: Raw per-job response times in arrival order, populated only when
    #: the run was asked to ``collect_responses`` — shard runs return them
    #: so the merged percentiles are exact, not an approximation from
    #: per-shard percentiles.
    responses_s: Optional[np.ndarray] = None

    @property
    def total_energy_j(self) -> float:
        """Everything consumed inside the horizon (joules)."""
        return self.baseline_energy_j + self.transition_energy_j + self.dynamic_energy_j

    @property
    def mean_power_w(self) -> float:
        """Realised mean cluster power over the horizon."""
        return self.total_energy_j / self.horizon_s

    @property
    def rung_switches(self) -> int:
        """Number of active-configuration changes across the timeline."""
        labels = [s.rung_label for s in self.timeline]
        return sum(1 for a, b in zip(labels, labels[1:]) if a != b)


class ClusterScheduler:
    """Replay a demand trace through a policy (and optionally an autoscaler).

    Parameters
    ----------
    workload:
        The served workload; ``workload.ops_per_job`` sets the job size
        (chunk jobs with :meth:`repro.workloads.base.Workload.with_job_size`
        to control service times).
    policy:
        A :class:`DispatchPolicy` instance or a CLI policy name.
    demand_trace:
        Per-interval demand as a fraction of ``reference_capacity_ops``.
    config:
        Fixed-mix mode: every node of this configuration stays active for
        the whole run (the paper's static provisioning).  Mutually
        exclusive with ``autoscaler``.
    autoscaler:
        Autoscaled mode: the controller re-targets a ladder rung at every
        control tick; the node pool is the per-type maximum over the
        ladder.
    reference_capacity_ops:
        Peak throughput the trace is normalised by.  Defaults to the fixed
        configuration's capacity, or the ladder's top rung — which is also
        how the offline oracle normalises, so energies are comparable.
    transition_costs:
        One :class:`TransitionCosts` for every node, a mapping from node
        type name to per-type costs, or ``None`` for per-node defaults
        scaled to each node's nameplate power.
    park_state:
        ``"auto"`` applies the economic rule per node (OFF when the
        forecast park exceeds the node's off/on break-even time, IDLE
        otherwise), ``"idle"``/``"off"`` force one park state.
    default_park_s:
        Park-duration forecast used when the autoscaler cannot provide one
        (reactive controllers); defaults to two control intervals.
    arrival_model:
        Per-interval arrival process: an
        :class:`~repro.queueing.processes.IntervalArrivals` instance or a
        kind name (``"poisson"``/``"mmpp"``/``"flash-crowd"``).  The
        default (None/"poisson") reproduces the engine's historical
        Poisson draws bit-for-bit.
    service_model:
        Optional batched sampler of *unit-mean service multipliers*
        (e.g. ``repro.queueing.processes.LognormalService(1.0)``): each
        interval's batch is drawn once, after the arrival times, and job
        ``i`` serves for ``node.service_time_s * mult_i``.  None draws
        nothing and keeps deterministic service exactly.
    """

    def __init__(
        self,
        workload: Workload,
        policy: Union[DispatchPolicy, str],
        demand_trace: Sequence[float],
        *,
        interval_s: float = 30.0,
        config: Optional[ClusterConfiguration] = None,
        autoscaler: Optional[Autoscaler] = None,
        reference_capacity_ops: Optional[float] = None,
        transition_costs: Union[TransitionCosts, Dict[str, TransitionCosts], None] = None,
        off_w: float = 0.0,
        park_state: str = "auto",
        default_park_s: Optional[float] = None,
        seed: int = DEFAULT_SEED,
        arrival_model: Union[IntervalArrivals, str, None] = None,
        service_model: Optional[BatchServiceSampler] = None,
    ) -> None:
        if (config is None) == (autoscaler is None):
            raise ReproError("provide exactly one of config= or autoscaler=")
        if interval_s <= 0:
            raise ReproError(f"interval must be positive, got {interval_s}")
        if park_state not in ("auto", "idle", "off"):
            raise ReproError(f"park_state must be auto/idle/off, got {park_state!r}")
        trace = np.asarray(demand_trace, dtype=float)
        if trace.ndim != 1 or trace.size == 0:
            raise ReproError("demand trace must be a non-empty 1-D sequence")
        if np.any(trace <= 0) or np.any(trace > 1):
            raise ReproError("demand fractions must lie in (0, 1]")

        self.workload = workload
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.trace = trace
        self.interval_s = float(interval_s)
        self.autoscaler = autoscaler
        self.park_state = park_state
        self.default_park_s = (
            2.0 * self.interval_s if default_park_s is None else float(default_park_s)
        )
        self.seed = int(seed)
        self.arrival_model = make_interval_arrivals(arrival_model)
        if service_model is not None and not callable(service_model):
            raise ReproError(
                "service_model must be a batched sampler (rng, size) -> times"
            )
        self.service_model = service_model

        # Node pool: per type, the largest count any reachable configuration
        # asks for (all rungs share a type's operating point by construction).
        pool: Dict[str, Tuple] = {}  # type -> (group, max count)
        configs = (
            [r.config for r in autoscaler.ladder] if autoscaler is not None else [config]
        )
        for c in configs:
            for g in c.groups:
                prev = pool.get(g.spec.name)
                if prev is None or g.count > prev[1]:
                    pool[g.spec.name] = (g, g.count)

        self._nodes: List[_Node] = []
        self._by_type: Dict[str, List[_Node]] = {}
        for type_name in sorted(pool):
            group, count = pool[type_name]
            k = operating_point_constants(
                group.spec,
                workload.demand_for(group.spec),
                group.cores,
                group.frequency_hz,
            )
            if transition_costs is None:
                costs = TransitionCosts.scaled(k.nameplate_w)
            elif isinstance(transition_costs, TransitionCosts):
                costs = transition_costs
            else:
                try:
                    costs = transition_costs[type_name]
                except KeyError:
                    raise ReproError(
                        f"no transition costs supplied for node type {type_name!r}"
                    ) from None
            members = [
                _Node(
                    name=f"{type_name}-{i:03d}",
                    index=i,
                    spec_name=type_name,
                    rate=k.rate,
                    busy_dyn_w=k.busy_dyn_w,
                    idle_w=k.idle_w,
                    nameplate_w=k.nameplate_w,
                    ops_per_job=workload.ops_per_job,
                    window_s=self.interval_s,
                    costs=costs,
                    off_w=off_w,
                )
                for i in range(count)
            ]
            self._by_type[type_name] = members
            self._nodes.extend(members)

        if autoscaler is not None:
            top = autoscaler.ladder[autoscaler.top]
            self.reference_capacity_ops = (
                top.capacity_ops
                if reference_capacity_ops is None
                else float(reference_capacity_ops)
            )
            self.reference_peak_w = top.peak_w
            self._fixed_config = None
        else:
            rate = sum(
                n.rate for n in self._nodes
            )
            self.reference_capacity_ops = (
                rate if reference_capacity_ops is None else float(reference_capacity_ops)
            )
            self.reference_peak_w = sum(n.idle_w + n.busy_dyn_w for n in self._nodes)
            self._fixed_config = config
        if self.reference_capacity_ops <= 0:
            raise ReproError("reference capacity must be positive")
        self._reference_jobs_per_s = self.reference_capacity_ops / workload.ops_per_job

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def _park_off(self, node: _Node, expected_park_s: float) -> bool:
        if self.park_state == "idle":
            return False
        if self.park_state == "off":
            return True
        return expected_park_s >= node.costs.off_breakeven_s(node.idle_w, node.off_w)

    def _reconcile(self, tick: int, t: float, rung: Rung, chosen_index: int) -> None:
        expected = None
        if self.autoscaler is not None:
            expected = self.autoscaler.expected_park_s(tick, chosen_index, self.interval_s)
        if expected is None:
            expected = self.default_park_s
        for type_name, members in self._by_type.items():
            want = rung.config.count_of(type_name)
            # Prefer nodes already serving so a rung change drains the
            # fewest queues; fall back to stable index order.
            order = sorted(
                members,
                key=lambda n: (
                    0
                    if n.psm is not None
                    and not n.draining
                    and n.psm.state in (NodePowerState.ACTIVE, NodePowerState.BOOTING)
                    else 1,
                    n.index,
                ),
            )
            for i, node in enumerate(order):
                if i < want:
                    node.activate(t)
                else:
                    node.deactivate(t, self._park_off(node, expected))

    def _park_drained(self, t: float) -> None:
        # Parks are pre-scheduled at drain time by deactivate(); here we
        # just retire the draining flag once the backlog has cleared.
        for node in self._nodes:
            if node.draining and node.free_at <= t:
                node.draining = False

    def _dispatch_set(self) -> List[_Node]:
        out = [
            n
            for n in self._nodes
            if not n.draining
            and n.psm is not None
            and n.psm.state in (NodePowerState.ACTIVE, NodePowerState.BOOTING)
        ]
        if out:
            return out
        # Degenerate fallback (a rung that drained everything mid-boot):
        # serve on whatever is still powered rather than dropping jobs.
        powered = [n for n in self._nodes if n.psm is not None and n.psm.state.powered]
        return powered if powered else list(self._nodes)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        on_interval: Optional[Callable[[TimelineSample], None]] = None,
        collect_responses: bool = False,
    ) -> ScheduleResult:
        """Replay the trace once; deterministic for a fixed seed.

        ``on_interval`` is called with each :class:`TimelineSample` the
        moment its interval closes, streaming the telemetry the result
        would otherwise only expose after the run.  Neither the callback
        nor the observability instruments touch the RNG stream or any
        float the simulation consumes, so a seeded run's
        :class:`ScheduleResult` is bit-identical with or without them
        (pinned by ``tests/obs/test_instrumentation.py``).

        ``collect_responses`` additionally returns the raw per-job
        response times on the result (``responses_s``) — shard runs need
        them so :mod:`repro.parallel.sharding` can merge exact
        percentiles.  It is read-only bookkeeping: the simulated floats
        and RNG stream are untouched.
        """
        with span(
            "scheduler.run",
            policy=self.policy.name,
            workload=self.workload.name,
            intervals=int(self.trace.size),
        ):
            return self._run(on_interval, collect_responses)

    def _run(
        self,
        on_interval: Optional[Callable[[TimelineSample], None]],
        collect_responses: bool = False,
    ) -> ScheduleResult:
        self.policy.reset()
        if self.autoscaler is not None:
            self.autoscaler.reset()
        self.arrival_model.reset()
        rng = RngRegistry(self.seed).stream("scheduler/engine")
        interval = self.interval_s
        n_intervals = int(self.trace.size)
        horizon = n_intervals * interval

        registry = get_registry()
        dispatch_hist = None
        if registry.enabled:
            policy_label = {"policy": self.policy.name}
            dispatch_hist = registry.histogram(
                "repro_sched_dispatch_latency_s",
                help="Wall-clock latency of one policy select() call",
                labels=policy_label,
            )
            jobs_counter = registry.counter(
                "repro_sched_jobs_dispatched_total",
                help="Jobs placed on a node by the dispatch policy",
                labels=policy_label,
            )
            boot_counter = registry.counter(
                "repro_sched_power_transitions_total",
                help="Node power-state transitions committed by the engine",
                labels={"transition": "boot"},
            )
            shutdown_counter = registry.counter(
                "repro_sched_power_transitions_total",
                help="Node power-state transitions committed by the engine",
                labels={"transition": "shutdown"},
            )
            interval_counter = registry.counter(
                "repro_sched_intervals_total",
                help="Control intervals replayed",
            )
            queue_gauge = registry.gauge(
                "repro_sched_queue_depth_jobs",
                help="Jobs still queued cluster-wide at the last interval edge",
            )
            active_gauge = registry.gauge(
                "repro_sched_active_nodes",
                help="Nodes in the dispatch set at the last interval edge",
            )
            powered_gauge = registry.gauge(
                "repro_sched_powered_nodes",
                help="Powered nodes at the last interval edge",
            )
            boots_mark = 0
            shutdowns_mark = 0

        current = self.autoscaler.top if self.autoscaler is not None else 0
        u_obs = 0.0
        responses: List[float] = []
        completed = 0
        arrived = 0
        timeline: List[TimelineSample] = []
        u_ref: List[float] = []
        p_trace: List[float] = []

        for k in range(n_intervals):
            demand = float(self.trace[k])
            t0 = k * interval
            t1 = t0 + interval
            if self.autoscaler is not None:
                current = self.autoscaler.decide(k, u_obs, current)
                rung = self.autoscaler.ladder[current]
                self._reconcile(k, t0, rung, current)
                label = rung.label
            else:
                if k == 0:
                    for node in self._nodes:
                        node.activate(0.0)
                label = self._fixed_config.label()
            self._park_drained(t0)
            dispatch = self._dispatch_set()
            for n in self._nodes:
                n.in_dispatch = False
            for n in dispatch:
                n.in_dispatch = True

            lam = demand * self._reference_jobs_per_s
            times = self.arrival_model.sample_interval(rng, lam, interval, t0, t1)
            n_arr = int(times.size)
            arrived += n_arr
            if n_arr:
                # Unit-mean service multipliers, drawn in one batch after
                # the interval's arrivals are final (the process
                # contract); None means zero extra draws — the historical
                # stream exactly.
                mults = None
                if self.service_model is not None:
                    mults = np.asarray(
                        self.service_model(rng, n_arr), dtype=float
                    )
                    if mults.shape != (n_arr,) or np.any(mults <= 0):
                        raise ReproError(
                            "service_model must return one positive "
                            f"multiplier per arrival, got shape {mults.shape}"
                        )
                select = self.policy.select
                if dispatch_hist is not None:
                    # Instrumented twin of the loop below: bound methods
                    # prefetched so per-job overhead stays inside the obs
                    # layer's <= 5% contract.
                    observe = dispatch_hist.observe
                    for i, ta in enumerate(times):
                        t_arr = float(ta)
                        t_sel = perf_counter()
                        node = select(dispatch, t_arr, rng)
                        observe(perf_counter() - t_sel)
                        done = node.assign(
                            t_arr,
                            None
                            if mults is None
                            else node.service_time_s * mults[i],
                        )
                        responses.append(done - t_arr)
                        if done <= horizon:
                            completed += 1
                    jobs_counter.inc(n_arr)
                else:
                    for i, ta in enumerate(times):
                        t_arr = float(ta)
                        node = select(dispatch, t_arr, rng)
                        done = node.assign(
                            t_arr,
                            None
                            if mults is None
                            else node.service_time_s * mults[i],
                        )
                        responses.append(done - t_arr)
                        if done <= horizon:
                            completed += 1

            # Interval telemetry: difference the busy/baseline marks.
            busy_active = 0.0
            served_ops = 0.0
            energy = 0.0
            for n in self._nodes:
                if n.psm is None:
                    continue
                n.psm.advance(t1)
                b1 = n.busy_up_to(t1)
                db = b1 - n.busy_mark
                n.busy_mark = b1
                e1 = n.psm.baseline_energy_j(t1)
                energy += (e1 - n.baseline_mark) + db * n.busy_dyn_w
                n.baseline_mark = e1
                served_ops += db * n.rate
                if n.in_dispatch:
                    busy_active += db
            u_obs = busy_active / (len(dispatch) * interval)
            power = energy / interval
            u_ref.append(served_ops / (self.reference_capacity_ops * interval))
            p_trace.append(power)
            sample = TimelineSample(
                t_s=t0,
                demand_fraction=demand,
                rung_label=label,
                n_active=len(dispatch),
                n_powered=sum(
                    1 for n in self._nodes if n.psm is not None and n.psm.state.powered
                ),
                utilisation=u_obs,
                power_w=power,
                arrivals=n_arr,
                served_ops=served_ops,
            )
            timeline.append(sample)
            if dispatch_hist is not None:
                boots_now = sum(
                    n.psm.boot_count for n in self._nodes if n.psm is not None
                )
                shutdowns_now = sum(
                    n.psm.shutdown_count for n in self._nodes if n.psm is not None
                )
                boot_counter.inc(boots_now - boots_mark)
                shutdown_counter.inc(shutdowns_now - shutdowns_mark)
                boots_mark = boots_now
                shutdowns_mark = shutdowns_now
                interval_counter.inc()
                queue_gauge.set(sum(n.queue_len(t1) for n in self._nodes))
                active_gauge.set(sample.n_active)
                powered_gauge.set(sample.n_powered)
            if on_interval is not None:
                on_interval(sample)

        # Totals (marks were last updated at t = horizon).
        baseline_total = sum(
            n.baseline_mark for n in self._nodes if n.psm is not None
        )
        transition_total = sum(
            n.psm.transition_energy_j for n in self._nodes if n.psm is not None
        )
        dynamic_total = sum(n.busy_mark * n.busy_dyn_w for n in self._nodes)
        resp = np.asarray(responses, dtype=float)
        if resp.size:
            p50, p95, p99 = (float(np.percentile(resp, q)) for q in (50.0, 95.0, 99.0))
            mean_resp = float(resp.mean())
        else:
            p50 = p95 = p99 = mean_resp = 0.0

        node_stats = tuple(
            NodeStats(
                name=n.name,
                spec_name=n.spec_name,
                jobs=n.jobs,
                busy_s=n.busy_mark,
                utilisation=n.busy_mark / horizon,
                energy_j=(n.baseline_mark if n.psm is not None else 0.0)
                + n.busy_mark * n.busy_dyn_w,
                boots=n.psm.boot_count if n.psm is not None else 0,
                shutdowns=n.psm.shutdown_count if n.psm is not None else 0,
                final_state=n.psm.state.value if n.psm is not None else "off",
            )
            for n in self._nodes
        )
        proportionality: Optional[DynamicProportionality] = None
        if sum(u_ref) > 0:
            proportionality = dynamic_proportionality(
                u_ref, p_trace, self.reference_peak_w, interval_s=interval
            )
        return ScheduleResult(
            workload_name=self.workload.name,
            policy_name=self.policy.name,
            interval_s=interval,
            horizon_s=horizon,
            reference_capacity_ops=self.reference_capacity_ops,
            reference_peak_w=self.reference_peak_w,
            jobs_arrived=arrived,
            jobs_completed=completed,
            p50_s=p50,
            p95_s=p95,
            p99_s=p99,
            mean_response_s=mean_resp,
            baseline_energy_j=baseline_total - transition_total,
            dynamic_energy_j=dynamic_total,
            transition_energy_j=transition_total,
            boots=sum(n.psm.boot_count for n in self._nodes if n.psm is not None),
            shutdowns=sum(
                n.psm.shutdown_count for n in self._nodes if n.psm is not None
            ),
            node_stats=node_stats,
            timeline=tuple(timeline),
            proportionality=proportionality,
            responses_s=resp if collect_responses else None,
        )
