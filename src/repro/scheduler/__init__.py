"""Online heterogeneity-aware cluster scheduler.

The paper picks a *static* Pareto-optimal mix and defers dynamic adaptation
("dynamic adaptation ... complements our approach", Section I);
:mod:`repro.extensions.dynamic` quantifies an *offline per-interval oracle*
for that complement.  This package closes the remaining gap with a real
online scheduling layer:

* :mod:`repro.scheduler.policies` — pluggable per-job dispatch policies
  (round-robin, join-shortest-queue, power-of-two-choices, and a
  PPR-greedy policy that ranks node *types* by the paper's PPR at one
  common evaluation utilisation — peak by default, the Table 6 winners —
  and joins the shortest queue within the winning type);
* :mod:`repro.scheduler.powerstate` — a per-node power-state machine
  (active / idle / off) with configurable transition latency and energy,
  so "turning wimpy nodes off" has a modelled cost instead of being free;
* :mod:`repro.scheduler.autoscaler` — reactive (threshold + hysteresis)
  and predictive (trace-informed) controllers that walk a power budget's
  capacity/power Pareto ladder online;
* :mod:`repro.scheduler.engine` — the event-driven trace-replaying
  simulation core, emitting per-node utilisation and energy, response-time
  percentiles, and *dynamic* cluster EP metrics over the realised power
  trace.

The experiment driver comparing policies against the static
peak-provisioned cluster and the offline oracle lives in
:mod:`repro.experiments.scheduling`; the CLI front end is
``repro schedule``.
"""

from repro.scheduler.autoscaler import (
    Autoscaler,
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    Rung,
    build_ladder,
)
from repro.scheduler.engine import (
    ClusterScheduler,
    NodeStats,
    ScheduleResult,
    TimelineSample,
)
from repro.scheduler.policies import (
    POLICY_NAMES,
    DispatchPolicy,
    JoinShortestQueue,
    PowerOfTwoChoices,
    PPRGreedy,
    RoundRobin,
    make_policy,
)
from repro.scheduler.powerstate import (
    NodePowerState,
    PowerStateMachine,
    TransitionCosts,
)

__all__ = [
    "Autoscaler",
    "PredictiveAutoscaler",
    "ReactiveAutoscaler",
    "Rung",
    "build_ladder",
    "ClusterScheduler",
    "NodeStats",
    "ScheduleResult",
    "TimelineSample",
    "POLICY_NAMES",
    "DispatchPolicy",
    "RoundRobin",
    "JoinShortestQueue",
    "PowerOfTwoChoices",
    "PPRGreedy",
    "make_policy",
    "NodePowerState",
    "PowerStateMachine",
    "TransitionCosts",
]
