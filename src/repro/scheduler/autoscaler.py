"""Online autoscalers that walk a power budget's capacity ladder.

The offline oracle in :mod:`repro.extensions.dynamic` re-picks the cheapest
covering configuration every interval with perfect knowledge and free
switching.  The controllers here make the same kind of decision *online*:

* :class:`ReactiveAutoscaler` sees only the realised utilisation of the
  current configuration and steps one rung at a time between a high and a
  low threshold, with a cooldown (hysteresis) so noise does not make it
  thrash;
* :class:`PredictiveAutoscaler` knows the demand trace shape (diurnal load
  is forecastable to a few percent) and jumps straight to the
  lowest-modelled-power rung that covers the next interval's demand with a
  target-utilisation headroom — the online mirror of the oracle's
  min-power covering rule.

The ladder they walk is built by :func:`build_ladder`: candidate
configurations under the power budget, dominance-filtered so only useful
rungs remain.  A candidate is dropped when another candidate has at least
its capacity while drawing no more power both at idle and at peak — under
the linear power model ``P(u) = idle + u * dyn`` the dominating rung is
then cheaper at *every* served load, so filtering never discards the
oracle's optimum (the scheduling experiment pins the resulting energy gap
at a few percent).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.configuration import ClusterConfiguration
from repro.errors import ReproError
from repro.model.batched import config_constants
from repro.workloads.base import Workload

__all__ = [
    "Rung",
    "build_ladder",
    "Autoscaler",
    "ReactiveAutoscaler",
    "PredictiveAutoscaler",
]


@dataclass(frozen=True)
class Rung:
    """One step of the capacity ladder: a configuration and its constants.

    ``capacity_ops`` is the configuration's peak throughput for the ladder's
    workload; ``idle_w``/``dyn_w`` are the endpoints of its linear power
    curve (all straight from :func:`repro.model.batched.config_constants`,
    so the ladder is consistent with the sweep engine and the oracle).
    """

    config: ClusterConfiguration
    capacity_ops: float
    idle_w: float
    dyn_w: float

    @property
    def peak_w(self) -> float:
        """Power at full utilisation (watts)."""
        return self.idle_w + self.dyn_w

    @property
    def label(self) -> str:
        """The configuration's mix label."""
        return self.config.label()

    def utilisation_at(self, required_ops: float) -> float:
        """Utilisation when serving ``required_ops`` per second (clipped)."""
        return min(required_ops / self.capacity_ops, 1.0)

    def power_at(self, required_ops: float) -> float:
        """Modelled power (watts) while serving ``required_ops`` per second."""
        return self.idle_w + self.utilisation_at(required_ops) * self.dyn_w

    def covers(self, required_ops: float, headroom: float = 1.0) -> bool:
        """Whether this rung can carry the load at utilisation ``headroom``."""
        return self.capacity_ops * headroom + 1e-9 >= required_ops


def build_ladder(
    workload: Workload,
    candidates: Sequence[ClusterConfiguration],
) -> Tuple[Rung, ...]:
    """Turn candidate configurations into a sorted, dominance-filtered ladder.

    Rungs are sorted by capacity ascending.  A candidate is removed when
    some other candidate offers at least as much capacity for no more power
    at both curve endpoints (idle and peak) — such a rung could never be
    the cheapest covering choice at any load.
    """
    if not candidates:
        raise ReproError("need at least one candidate configuration")
    rungs: List[Rung] = []
    for config in candidates:
        rate, idle_w, dyn_w = config_constants(workload, config)
        rungs.append(Rung(config, rate, idle_w, dyn_w))
    kept: List[Rung] = []
    for r in rungs:
        dominated = any(
            o is not r
            and o.capacity_ops >= r.capacity_ops
            and o.idle_w <= r.idle_w
            and o.peak_w <= r.peak_w
            and (o.capacity_ops > r.capacity_ops or o.idle_w < r.idle_w or o.peak_w < r.peak_w)
            for o in rungs
        )
        if not dominated:
            kept.append(r)
    kept.sort(key=lambda r: (r.capacity_ops, r.peak_w, r.label))
    return tuple(kept)


class Autoscaler(abc.ABC):
    """Base class: pick the active rung for the next control interval."""

    def __init__(self, ladder: Sequence[Rung]) -> None:
        if not ladder:
            raise ReproError("autoscaler needs a non-empty ladder")
        self.ladder: Tuple[Rung, ...] = tuple(ladder)

    @property
    def top(self) -> int:
        """Index of the highest-capacity rung."""
        return len(self.ladder) - 1

    @abc.abstractmethod
    def decide(
        self,
        tick: int,
        observed_utilisation: float,
        current_index: int,
    ) -> int:
        """Rung index to run the next interval on.

        ``observed_utilisation`` is the current rung's realised utilisation
        over the interval that just ended (0 for the very first decision).
        """

    def expected_park_s(self, tick: int, chosen_index: int, interval_s: float) -> Optional[float]:
        """Forecast how long capacity freed at ``tick`` stays unneeded.

        The engine uses this against the power-state break-even time to
        choose between parking released nodes IDLE and powering them OFF.
        ``None`` means the controller cannot forecast (reactive case) and
        the engine falls back to a conservative default.
        """
        return None

    def reset(self) -> None:
        """Clear controller state between runs."""


class ReactiveAutoscaler(Autoscaler):
    """Threshold controller with hysteresis.

    Steps up one rung when the observed utilisation exceeds ``high``, down
    one when it falls below ``low`` *and* the rung below could carry the
    observed load without immediately re-triggering the up-threshold.
    After every change the controller holds for ``cooldown_ticks``
    intervals so a single noisy sample cannot bounce the cluster between
    rungs.
    """

    def __init__(
        self,
        ladder: Sequence[Rung],
        *,
        high: float = 0.85,
        low: float = 0.50,
        cooldown_ticks: int = 2,
    ) -> None:
        super().__init__(ladder)
        if not 0.0 < low < high <= 1.0:
            raise ReproError(f"need 0 < low < high <= 1, got ({low}, {high})")
        if cooldown_ticks < 0:
            raise ReproError("cooldown_ticks must be non-negative")
        self.high = high
        self.low = low
        self.cooldown_ticks = cooldown_ticks
        self._cooldown = 0

    def decide(self, tick: int, observed_utilisation: float, current_index: int) -> int:
        if self._cooldown > 0:
            self._cooldown -= 1
            return current_index
        if observed_utilisation > self.high and current_index < self.top:
            self._cooldown = self.cooldown_ticks
            return current_index + 1
        if observed_utilisation < self.low and current_index > 0:
            served_ops = observed_utilisation * self.ladder[current_index].capacity_ops
            below = self.ladder[current_index - 1]
            if below.covers(served_ops, headroom=self.high):
                self._cooldown = self.cooldown_ticks
                return current_index - 1
        return current_index

    def reset(self) -> None:
        self._cooldown = 0


class PredictiveAutoscaler(Autoscaler):
    """Trace-informed controller mirroring the oracle's covering rule.

    ``trace`` gives each interval's demand as a fraction of
    ``reference_capacity_ops`` (the same normalisation the engine uses to
    generate arrivals).  Each tick the controller looks at the demand of
    the next interval — taking the max over ``lookahead`` further intervals
    so capacity is booting *before* a rising edge arrives, not after — and
    picks the rung with the lowest modelled power among those that cover it
    at ``target_utilisation``.
    """

    def __init__(
        self,
        ladder: Sequence[Rung],
        trace: Sequence[float],
        reference_capacity_ops: float,
        *,
        target_utilisation: float = 0.95,
        lookahead: int = 1,
    ) -> None:
        super().__init__(ladder)
        self.trace = np.asarray(trace, dtype=float)
        if self.trace.ndim != 1 or self.trace.size == 0:
            raise ReproError("trace must be a non-empty 1-D sequence")
        if reference_capacity_ops <= 0:
            raise ReproError("reference capacity must be positive")
        if not 0.0 < target_utilisation <= 1.0:
            raise ReproError(
                f"target_utilisation must be in (0, 1], got {target_utilisation}"
            )
        if lookahead < 0:
            raise ReproError("lookahead must be non-negative")
        self.reference_capacity_ops = float(reference_capacity_ops)
        self.target_utilisation = target_utilisation
        self.lookahead = lookahead

    def _required_ops(self, tick: int) -> float:
        """Planned load of interval ``tick`` (clamped into the trace)."""
        i = min(max(tick, 0), self.trace.size - 1)
        return float(self.trace[i]) * self.reference_capacity_ops

    def _planning_ops(self, tick: int) -> float:
        hi = min(tick + self.lookahead, self.trace.size - 1)
        window = self.trace[min(tick, self.trace.size - 1) : hi + 1]
        return float(window.max()) * self.reference_capacity_ops

    def choose(self, required_ops: float) -> int:
        """Lowest-power rung covering ``required_ops`` at the target headroom."""
        best: Optional[int] = None
        best_power = float("inf")
        for i, rung in enumerate(self.ladder):
            if not rung.covers(required_ops, headroom=self.target_utilisation):
                continue
            power = rung.power_at(required_ops)
            if power < best_power:
                best, best_power = i, power
        return best if best is not None else self.top

    def decide(self, tick: int, observed_utilisation: float, current_index: int) -> int:
        return self.choose(self._planning_ops(tick))

    def expected_park_s(self, tick: int, chosen_index: int, interval_s: float) -> Optional[float]:
        """Intervals until demand outgrows the chosen rung again."""
        chosen = self.ladder[chosen_index]
        for j in range(tick + 1, self.trace.size):
            if not chosen.covers(self._required_ops(j), headroom=self.target_utilisation):
                return (j - tick) * interval_s
        return (self.trace.size - tick) * interval_s
