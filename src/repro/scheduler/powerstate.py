"""Per-node power-state machine with charged transitions.

The offline adaptation oracle (:mod:`repro.extensions.dynamic`) switches
whole configurations for free: a node that is "off" simply stops existing.
Physically, powering a server down and back up costs both *time* (it cannot
serve while booting) and *energy* (the boot sequence draws near-peak power
while contributing no work).  This module models those costs so the online
scheduler can answer the question the oracle cannot: when is it worth
turning a node off at all, and when should it merely sit idle?

States
------
``ACTIVE``
    Powered and eligible for dispatch; draws its idle power plus the
    workload's busy dynamic power while serving (the engine accounts for
    the dynamic part — this machine integrates the state baseline).
``IDLE``
    Powered but parked out of the dispatch set; draws idle power.  Resuming
    to ACTIVE is cheap (``resume_latency_s`` / ``resume_energy_j``).
``OFF``
    Drawing ``off_w`` (0 by default).  Booting back costs
    ``boot_latency_s`` / ``boot_energy_j``; shutting down costs
    ``shutdown_latency_s`` / ``shutdown_energy_j``.
``BOOTING`` / ``SHUTTING``
    In-flight transitions; the node is unavailable and draws idle power for
    the transition duration (the lump transition energy is charged on top).

The machine records a segment timeline (for the ASCII timeline view and
for exact baseline-energy integration) and counts transitions.  The
break-even dwell time — how long a park must last before OFF beats IDLE —
is :meth:`TransitionCosts.off_breakeven_s`; the autoscaler's hysteresis
test pins that large transition costs push the break-even beyond the park
horizon, keeping nodes idle instead of thrashing off/on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ReproError


__all__ = ["NodePowerState", "TransitionCosts", "PowerStateMachine"]


class NodePowerState(enum.Enum):
    """Power state of one node."""

    ACTIVE = "active"
    IDLE = "idle"
    OFF = "off"
    BOOTING = "booting"
    SHUTTING = "shutting"

    @property
    def powered(self) -> bool:
        """Whether the node draws its idle baseline in this state."""
        return self is not NodePowerState.OFF


@dataclass(frozen=True)
class TransitionCosts:
    """Latency and energy of every power-state transition of one node.

    Defaults model a small server: a 10 s boot and 5 s shutdown, each
    charged with a lump of energy on top of the idle draw during the
    transition window.  Set the energies/latencies large to model machines
    that are expensive to cycle (the hysteresis tests do exactly this).
    """

    boot_latency_s: float = 10.0
    boot_energy_j: float = 0.0
    shutdown_latency_s: float = 5.0
    shutdown_energy_j: float = 0.0
    resume_latency_s: float = 0.0
    resume_energy_j: float = 0.0

    def __post_init__(self) -> None:
        for field in (
            "boot_latency_s",
            "boot_energy_j",
            "shutdown_latency_s",
            "shutdown_energy_j",
            "resume_latency_s",
            "resume_energy_j",
        ):
            if getattr(self, field) < 0:
                raise ReproError(f"{field} must be non-negative")

    @classmethod
    def scaled(
        cls,
        nameplate_w: float,
        *,
        boot_latency_s: float = 10.0,
        shutdown_latency_s: float = 5.0,
        resume_latency_s: float = 0.0,
    ) -> "TransitionCosts":
        """Costs scaled to a node's size: transitions draw nameplate power.

        A node booting for ``boot_latency_s`` at its nameplate peak is the
        usual first-order model (firmware and OS bring-up run the machine
        flat out while serving nothing).
        """
        if nameplate_w < 0:
            raise ReproError(f"nameplate power must be non-negative, got {nameplate_w}")
        return cls(
            boot_latency_s=boot_latency_s,
            boot_energy_j=nameplate_w * boot_latency_s,
            shutdown_latency_s=shutdown_latency_s,
            shutdown_energy_j=nameplate_w * shutdown_latency_s,
            resume_latency_s=resume_latency_s,
            resume_energy_j=0.0,
        )

    def off_breakeven_s(self, idle_w: float, off_w: float = 0.0) -> float:
        """Park duration above which OFF beats IDLE for this node.

        Staying idle for T costs ``idle_w * T``; an off/on cycle costs the
        shutdown + boot energies plus ``off_w * T``.  The break-even is
        ``(E_down + E_up) / (idle_w - off_w)``; infinite when OFF saves no
        power at all.
        """
        saving_w = idle_w - off_w
        if saving_w <= 0:
            return float("inf")
        return (self.shutdown_energy_j + self.boot_energy_j) / saving_w


class PowerStateMachine:
    """The power-state machine of one node.

    Parameters
    ----------
    idle_w:
        Baseline draw while powered (ACTIVE/IDLE and during transitions).
    costs:
        Transition latencies and energies.
    off_w:
        Residual draw while OFF (0 for a hard power cycle; small for e.g.
        suspend-to-RAM).
    initial:
        Starting state; must be ACTIVE, IDLE or OFF.
    t0:
        Simulation time the machine starts existing at.
    """

    def __init__(
        self,
        idle_w: float,
        costs: TransitionCosts,
        *,
        off_w: float = 0.0,
        initial: NodePowerState = NodePowerState.ACTIVE,
        t0: float = 0.0,
    ) -> None:
        if idle_w < 0 or off_w < 0:
            raise ReproError("powers must be non-negative")
        if off_w > idle_w:
            raise ReproError(f"off power {off_w} exceeds idle power {idle_w}")
        if initial in (NodePowerState.BOOTING, NodePowerState.SHUTTING):
            raise ReproError("cannot start mid-transition")
        self.idle_w = float(idle_w)
        self.off_w = float(off_w)
        self.costs = costs
        self._state = initial
        self._segments: List[Tuple[float, NodePowerState]] = [(float(t0), initial)]
        self._pending_until: float = float(t0)
        self._pending_target: NodePowerState = initial
        self._transition_energy_j = 0.0
        self.boot_count = 0
        self.shutdown_count = 0

    # -- state queries ---------------------------------------------------
    @property
    def state(self) -> NodePowerState:
        """Current state (call :meth:`advance` first when time has moved)."""
        return self._state

    @property
    def transition_energy_j(self) -> float:
        """Lump energy charged for transitions so far."""
        return self._transition_energy_j

    @property
    def segments(self) -> Tuple[Tuple[float, NodePowerState], ...]:
        """The ``(start_time, state)`` timeline recorded so far."""
        return tuple(self._segments)

    @property
    def switch_count(self) -> int:
        """Number of recorded state changes."""
        return len(self._segments) - 1

    def ready_at(self) -> float:
        """When the in-flight transition (if any) completes."""
        return self._pending_until

    def advance(self, now: float) -> None:
        """Complete any in-flight transition that has finished by ``now``."""
        if (
            self._state in (NodePowerState.BOOTING, NodePowerState.SHUTTING)
            and now >= self._pending_until
        ):
            self._enter(self._pending_target, self._pending_until)

    # -- transitions -----------------------------------------------------
    def _enter(self, state: NodePowerState, t: float) -> None:
        if state is not self._state:
            # Callers may pre-schedule a transition at a future drain time;
            # clamping keeps the segment clock monotone if the node is
            # reclaimed before that time arrives.
            t = max(t, self._segments[-1][0])
            self._segments.append((t, state))
            self._state = state

    def request_active(self, now: float) -> float:
        """Ask for ACTIVE; returns the time the node will be dispatchable.

        IDLE resumes after ``resume_latency_s``; OFF boots after
        ``boot_latency_s`` (charging ``boot_energy_j``); a node already
        mid-boot reports its existing ready time.
        """
        self.advance(now)
        if self._state is NodePowerState.ACTIVE:
            return now
        if self._state is NodePowerState.BOOTING:
            return self._pending_until
        if self._state is NodePowerState.SHUTTING:
            # Finish the shutdown, then boot from OFF.
            self._enter(NodePowerState.OFF, self._pending_until)
            now = self._pending_until
        if self._state is NodePowerState.IDLE:
            if self.costs.resume_latency_s <= 0:
                self._transition_energy_j += self.costs.resume_energy_j
                self._enter(NodePowerState.ACTIVE, now)
                return now
            self._transition_energy_j += self.costs.resume_energy_j
            self._enter(NodePowerState.BOOTING, now)
            self._pending_until = now + self.costs.resume_latency_s
            self._pending_target = NodePowerState.ACTIVE
            return self._pending_until
        # OFF -> boot.
        self.boot_count += 1
        self._transition_energy_j += self.costs.boot_energy_j
        self._enter(NodePowerState.BOOTING, now)
        self._pending_until = now + self.costs.boot_latency_s
        self._pending_target = NodePowerState.ACTIVE
        return self._pending_until

    def request_idle(self, now: float) -> None:
        """Park an ACTIVE (or booting) node to IDLE."""
        self.advance(now)
        if self._state in (NodePowerState.IDLE, NodePowerState.SHUTTING):
            return
        if self._state is NodePowerState.BOOTING:
            # Let the boot finish, then park.
            self._enter(NodePowerState.ACTIVE, self._pending_until)
            now = self._pending_until
        if self._state is NodePowerState.OFF:
            raise ReproError("cannot park an OFF node to IDLE; boot it first")
        self._enter(NodePowerState.IDLE, now)

    def request_off(self, now: float) -> float:
        """Shut an ACTIVE/IDLE node down; returns when it reaches OFF."""
        self.advance(now)
        if self._state is NodePowerState.OFF:
            return now
        if self._state is NodePowerState.SHUTTING:
            return self._pending_until
        if self._state is NodePowerState.BOOTING:
            self._enter(NodePowerState.ACTIVE, self._pending_until)
            now = self._pending_until
        self.shutdown_count += 1
        self._transition_energy_j += self.costs.shutdown_energy_j
        if self.costs.shutdown_latency_s <= 0:
            self._enter(NodePowerState.OFF, now)
            return now
        self._enter(NodePowerState.SHUTTING, now)
        self._pending_until = now + self.costs.shutdown_latency_s
        self._pending_target = NodePowerState.OFF
        return self._pending_until

    # -- energy ----------------------------------------------------------
    def _segment_power_w(self, state: NodePowerState) -> float:
        return self.off_w if state is NodePowerState.OFF else self.idle_w

    def baseline_energy_j(self, until: float) -> float:
        """Integral of the state baseline power up to ``until`` (joules).

        Includes the lump transition energies; excludes the busy dynamic
        power, which the engine accounts per served job.
        """
        if until < self._segments[0][0]:
            raise ReproError("cannot integrate energy before the machine existed")
        total = 0.0
        for (t0, state), (t1, _) in zip(self._segments, self._segments[1:]):
            overlap = min(t1, until) - t0
            if overlap > 0:
                total += overlap * self._segment_power_w(state)
        last_t, last_state = self._segments[-1]
        if until > last_t:
            total += (until - last_t) * self._segment_power_w(last_state)
        return total + self._transition_energy_j

    def state_at(self, t: float) -> NodePowerState:
        """The recorded state at time ``t`` (segment lookup)."""
        state = self._segments[0][1]
        for start, seg_state in self._segments:
            if start <= t:
                state = seg_state
            else:
                break
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PowerStateMachine(state={self._state.value}, idle={self.idle_w}W, "
            f"boots={self.boot_count}, shutdowns={self.shutdown_count})"
        )
