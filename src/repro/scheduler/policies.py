"""Pluggable per-job dispatch policies.

A policy answers one question: *given the currently dispatchable nodes,
where does the next job go?*  The engine hands each policy the live node
views (see the protocol below) and the current simulation time; the policy
returns one of them.  All policies are deterministic given the engine's
seeded RNG stream, so whole schedule runs replay bit-identically.

Node protocol
-------------
Policies only rely on this read-only view, implemented by the engine's
internal node class:

``name``
    Stable identifier (used only for deterministic tie-breaking).
``spec_name``
    Node-type name (``"A9"``, ``"K10"``); nodes of one type share service
    time and PPR curve, which is what lets ``ppr-greedy`` reason per type.
``service_time_s``
    Per-job service time on this node (workload- and spec-dependent).
``backlog_s(now)``
    Seconds of already-assigned work still outstanding at ``now``
    (in-service remainder plus queued jobs).
``queue_len(now)``
    Number of assigned-but-unfinished jobs at ``now``.
``utilisation_estimate(now)``
    The node's short-horizon utilisation estimate in ``[0, 1]`` — the
    fraction of the next control window the existing backlog would keep it
    busy.
``ppr_at(u)``
    The paper's performance-to-power ratio of this node at utilisation
    ``u`` (ops per joule, :class:`repro.core.metrics.PPRCurve`).

Policies
--------
``round-robin``
    Cycles the dispatchable set in stable order.  Heterogeneity-blind: on
    a mixed cluster it loads wimpy and brawny nodes equally.
``jsq`` (join-shortest-queue)
    Sends the job to the node with the least outstanding *work in seconds*
    (backlog, not queue length — a 15 s x264 job on an A9 counts for more
    than a 0.4 s one on a K10).
``po2`` (power-of-two-choices)
    Samples two distinct nodes and keeps the lesser-backlog one — the
    classic low-coordination approximation of JSQ.
``ppr-greedy``
    Energy-aware: ranks node *types* by the paper's PPR (evaluated at one
    common utilisation, peak by default — the Table 6 winners) and joins
    the shortest queue within the winning type, skipping types already
    estimated above ``u_cap`` so latency is not sacrificed to chase
    efficiency.  On the paper's
    workloads this sends EP/memcached jobs to A9 nodes and x264 frames to
    K10 nodes — the dispatch-time analogue of the static Pareto-mix
    argument.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = [
    "POLICY_NAMES",
    "DispatchPolicy",
    "RoundRobin",
    "JoinShortestQueue",
    "PowerOfTwoChoices",
    "PPRGreedy",
    "make_policy",
]


class DispatchPolicy(abc.ABC):
    """Base class: pick one node from the dispatchable set."""

    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self,
        nodes: Sequence,
        now: float,
        rng: Optional[np.random.Generator] = None,
    ):
        """Return the node the next job should be assigned to."""

    def reset(self) -> None:
        """Clear inter-job state (e.g. the round-robin cursor)."""

    @staticmethod
    def _check(nodes: Sequence) -> None:
        if not nodes:
            raise ReproError("cannot dispatch: no dispatchable nodes")


class RoundRobin(DispatchPolicy):
    """Cycle through the dispatchable set in stable order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, nodes, now, rng=None):
        self._check(nodes)
        node = nodes[self._cursor % len(nodes)]
        self._cursor += 1
        return node

    def reset(self) -> None:
        self._cursor = 0


class JoinShortestQueue(DispatchPolicy):
    """Least outstanding work in seconds; ties break on node name."""

    name = "jsq"

    def select(self, nodes, now, rng=None):
        self._check(nodes)
        return min(nodes, key=lambda n: (n.backlog_s(now), n.name))


class PowerOfTwoChoices(DispatchPolicy):
    """Sample two distinct nodes, keep the lesser backlog."""

    name = "po2"

    def select(self, nodes, now, rng=None):
        self._check(nodes)
        if rng is None:
            raise ReproError("power-of-two-choices needs the engine's rng")
        if len(nodes) == 1:
            return nodes[0]
        i, j = rng.choice(len(nodes), size=2, replace=False)
        a, b = nodes[int(i)], nodes[int(j)]
        if a.backlog_s(now) == b.backlog_s(now):
            return min(a, b, key=lambda n: n.name)
        return min(a, b, key=lambda n: n.backlog_s(now))


class PPRGreedy(DispatchPolicy):
    """Send each job to the open node type with the best PPR; JSQ within.

    The policy groups the dispatchable set by node type.  A type whose
    aggregate backlog over the next ``window_s`` seconds puts it at or
    above ``u_cap`` utilisation is *closed*; among the open types the one
    with the highest ``ppr_at(u_eval)`` wins, and the job joins the
    shortest queue (in seconds of backlog) inside it.  When every type is
    closed the policy degrades to join-shortest-queue over all nodes, so
    an overloaded cluster still balances latency instead of piling onto
    the most efficient type.

    Two design points matter:

    * Types are compared at one *common* evaluation utilisation
      (``u_eval``, default 1 — the paper's peak PPR, exactly the Table 6
      per-workload winners).  Evaluating each type at its own projected
      utilisation would be incoherent: PPR rises with u, so the type where
      one job is the biggest utilisation bump (a 15 s x264 frame on a
      small A9 group) would win regardless of which silicon actually
      serves the workload efficiently.
    * Types are ranked, not individual nodes: the node-level PPR maximiser
      would *pack* jobs onto already-busy nodes, trading tail latency for
      nothing once the idle baseline is sunk.  Type-level ranking keeps
      the energy signal while within-type JSQ preserves the tail.
    """

    name = "ppr-greedy"

    def __init__(
        self, u_cap: float = 0.9, window_s: float = 5.0, u_eval: float = 1.0
    ) -> None:
        if not 0.0 < u_cap <= 1.0:
            raise ReproError(f"u_cap must be in (0, 1], got {u_cap}")
        if window_s <= 0:
            raise ReproError(f"window_s must be positive, got {window_s}")
        if not 0.0 < u_eval <= 1.0:
            raise ReproError(f"u_eval must be in (0, 1], got {u_eval}")
        self.u_cap = u_cap
        self.window_s = window_s
        self.u_eval = u_eval

    def select(self, nodes, now, rng=None):
        self._check(nodes)
        groups: dict = {}
        for n in nodes:
            groups.setdefault(n.spec_name, []).append(n)
        best_type = None
        best_key = None
        for spec_name, members in groups.items():
            backlog = sum(n.backlog_s(now) for n in members)
            horizon = len(members) * self.window_s
            if backlog / horizon >= self.u_cap:
                continue
            key = (-members[0].ppr_at(self.u_eval), spec_name)
            if best_key is None or key < best_key:
                best_type, best_key = members, key
        pool = best_type if best_type is not None else nodes
        return min(pool, key=lambda n: (n.backlog_s(now), n.name))


POLICY_NAMES = ("round-robin", "jsq", "po2", "ppr-greedy")


def make_policy(name: str, **kwargs) -> DispatchPolicy:
    """Instantiate a dispatch policy by CLI name."""
    if name == "round-robin":
        return RoundRobin()
    if name == "jsq":
        return JoinShortestQueue()
    if name == "po2":
        return PowerOfTwoChoices()
    if name == "ppr-greedy":
        return PPRGreedy(**kwargs)
    raise ReproError(f"unknown policy {name!r}; expected one of {POLICY_NAMES}")
