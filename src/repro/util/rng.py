"""Deterministic random-number-generator management.

Simulation components (the simulated testbed, the discrete-event queueing
simulator, workload generators) must be reproducible run-to-run and mutually
independent: drawing more samples in one component must not perturb another.
:class:`RngRegistry` hands out independent :class:`numpy.random.Generator`
streams keyed by a stable string name, derived from a single root seed via
``numpy``'s :class:`~numpy.random.SeedSequence` spawning mechanism.

Example
-------
>>> reg = RngRegistry(seed=42)
>>> meter_rng = reg.stream("powermeter/A9")
>>> sched_rng = reg.stream("scheduler")
>>> reg.stream("powermeter/A9") is meter_rng   # memoised
True
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry", "stable_hash32", "DEFAULT_SEED"]

#: Root seed used when callers do not specify one.  All paper experiments run
#: with this seed so published-vs-reproduced comparisons are deterministic.
DEFAULT_SEED = 20160913  # CLUSTER 2016 conference dates (Sept 13, 2016).


def stable_hash32(name: str) -> int:
    """Hash a string to a stable 32-bit integer.

    Python's builtin ``hash`` is salted per-process, so it cannot be used to
    derive reproducible seeds.  This uses BLAKE2b, which is stable across
    processes, platforms and Python versions.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """A registry of named, independent random streams under one root seed.

    Parameters
    ----------
    seed:
        Root seed.  Two registries with the same seed produce identical
        streams for identical names, regardless of creation order.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream's seed is a pure function of ``(root seed, name)``; the
        order in which streams are first requested does not matter.
        """
        if name not in self._streams:
            ss = np.random.SeedSequence([self._seed, stable_hash32(name)])
            self._streams[name] = np.random.default_rng(ss)
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry whose root seed derives from ``name``.

        Useful to give a whole subsystem (e.g. one simulated node) its own
        namespace of streams.
        """
        return RngRegistry(seed=(self._seed * 1_000_003 + stable_hash32(name)) % 2**63)

    def reset(self) -> None:
        """Drop all memoised streams; subsequent draws restart each stream."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
