"""Unit constants and conversion helpers.

The library works internally in SI base units: seconds, joules, watts, hertz,
bytes, and bits-per-second for link rates.  These constants keep calibration
code readable (``1.4 * GHZ`` instead of ``1.4e9``) and the conversion helpers
make rendering code explicit about what it prints.
"""

from __future__ import annotations

__all__ = [
    "KHZ",
    "MHZ",
    "GHZ",
    "KB",
    "MB",
    "GB",
    "KBPS",
    "MBPS",
    "GBPS",
    "MS",
    "US",
    "MINUTE",
    "HOUR",
    "to_ms",
    "to_us",
    "to_ghz",
    "to_mbps",
    "watts_to_milliwatts",
]

#: Frequency multipliers (Hz).
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

#: Binary byte-size multipliers.
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Link rates (bits per second).
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9

#: Durations (seconds).
MS = 1e-3
US = 1e-6
MINUTE = 60.0
HOUR = 3600.0


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MS


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / US


def to_ghz(hertz: float) -> float:
    """Convert hertz to gigahertz."""
    return hertz / GHZ


def to_mbps(bits_per_second: float) -> float:
    """Convert bits/s to megabits/s."""
    return bits_per_second / MBPS


def watts_to_milliwatts(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts * 1e3
