"""Statistics helpers: percentiles, summaries, and error aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "percentile",
    "p95",
    "SummaryStats",
    "summarize",
    "mape",
    "hill_tail_index",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``samples``, linearly interpolated.

    Matches :func:`numpy.percentile` with the default "linear" method, which
    is also what common latency tooling reports.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


def p95(samples: Sequence[float]) -> float:
    """95th percentile — the paper's response-time statistic."""
    return percentile(samples, 95.0)


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for ``samples``."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


def hill_tail_index(samples: Sequence[float], k: int | None = None) -> float:
    """Hill estimator of the tail index alpha from the top-``k`` order stats.

    For samples whose survival function decays like ``x**-alpha`` (e.g.
    Pareto service times), the Hill estimator is the reciprocal of the mean
    log-excess of the ``k`` largest observations over the ``(k+1)``-th:

        alpha_hat = k / sum_{i=1..k} log(x_(n-i+1) / x_(n-k))

    ``k`` defaults to ``max(10, int(sqrt(n)))`` — large enough to tame the
    estimator's variance, small enough to stay in the tail where the power
    law holds.  The hypothesis suite uses this to pin that
    :class:`~repro.queueing.processes.ParetoService` draws really are
    heavy-tailed with (roughly) the configured index, and that lognormal
    and exponential draws are *not* mistaken for a fixed power law.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size < 3:
        raise ValueError(f"need at least 3 samples, got {arr.size}")
    if np.any(arr <= 0):
        raise ValueError("tail-index estimation needs strictly positive samples")
    if k is None:
        k = max(10, int(np.sqrt(arr.size)))
    k = int(k)
    if not 1 <= k < arr.size:
        raise ValueError(f"k must be in [1, {arr.size - 1}], got {k}")
    tail = np.sort(arr)[-(k + 1):]
    log_excess = np.log(tail[1:]) - np.log(tail[0])
    mean_excess = float(log_excess.mean())
    if mean_excess <= 0:
        raise ValueError("degenerate tail: top order statistics are all equal")
    return 1.0 / mean_excess


def mape(model: Sequence[float], measured: Sequence[float]) -> float:
    """Mean absolute percentage error between model and measured vectors."""
    m = np.asarray(model, dtype=float)
    g = np.asarray(measured, dtype=float)
    if m.shape != g.shape:
        raise ValueError(f"shape mismatch: {m.shape} vs {g.shape}")
    if m.size == 0:
        raise ValueError("empty inputs")
    if np.any(g == 0):
        raise ZeroDivisionError("measured vector contains zeros")
    return float(np.mean(np.abs(m - g) / np.abs(g)) * 100.0)
