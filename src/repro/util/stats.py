"""Statistics helpers: percentiles, summaries, and error aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["percentile", "p95", "SummaryStats", "summarize", "mape"]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``samples``, linearly interpolated.

    Matches :func:`numpy.percentile` with the default "linear" method, which
    is also what common latency tooling reports.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


def p95(samples: Sequence[float]) -> float:
    """95th percentile — the paper's response-time statistic."""
    return percentile(samples, 95.0)


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for ``samples``."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


def mape(model: Sequence[float], measured: Sequence[float]) -> float:
    """Mean absolute percentage error between model and measured vectors."""
    m = np.asarray(model, dtype=float)
    g = np.asarray(measured, dtype=float)
    if m.shape != g.shape:
        raise ValueError(f"shape mismatch: {m.shape} vs {g.shape}")
    if m.size == 0:
        raise ValueError("empty inputs")
    if np.any(g == 0):
        raise ZeroDivisionError("measured vector contains zeros")
    return float(np.mean(np.abs(m - g) / np.abs(g)) * 100.0)
