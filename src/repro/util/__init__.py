"""Shared utilities: units, deterministic RNG streams, numerics, statistics,
and plain-text table rendering."""

from repro.util.numerics import (
    bisect_increasing,
    clamp,
    is_monotone_nondecreasing,
    linspace_utilisation,
    logspace_utilisation,
    relative_error_pct,
    signed_relative_error_pct,
    trapezoid,
)
from repro.util.rng import DEFAULT_SEED, RngRegistry, stable_hash32
from repro.util.stats import SummaryStats, mape, p95, percentile, summarize
from repro.util.tables import format_number, render_kv, render_table

__all__ = [
    "DEFAULT_SEED",
    "RngRegistry",
    "stable_hash32",
    "trapezoid",
    "relative_error_pct",
    "signed_relative_error_pct",
    "bisect_increasing",
    "clamp",
    "linspace_utilisation",
    "logspace_utilisation",
    "is_monotone_nondecreasing",
    "percentile",
    "p95",
    "SummaryStats",
    "summarize",
    "mape",
    "render_table",
    "render_kv",
    "format_number",
]
