"""Numerical helpers shared across the library.

These routines back the energy-proportionality integrals (EPM), the queueing
CDF inversions (95th-percentile response times) and the validation error
metrics.  They are deliberately small, pure functions so they can be
property-tested in isolation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "trapezoid",
    "relative_error_pct",
    "signed_relative_error_pct",
    "bisect_increasing",
    "clamp",
    "logspace_utilisation",
    "linspace_utilisation",
    "is_monotone_nondecreasing",
]


def trapezoid(y: Sequence[float], x: Sequence[float]) -> float:
    """Trapezoid-rule integral of sampled ``y(x)``.

    Thin wrapper over :func:`numpy.trapezoid` that validates its inputs;
    the EPM metric is an area ratio and silently integrating mismatched or
    unsorted grids produces plausible-looking nonsense.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or ya.ndim != 1:
        raise ValueError("trapezoid expects 1-D arrays")
    if xa.shape != ya.shape:
        raise ValueError(f"shape mismatch: x has {xa.shape}, y has {ya.shape}")
    if xa.size < 2:
        raise ValueError("need at least two samples to integrate")
    if np.any(np.diff(xa) <= 0):
        raise ValueError("x grid must be strictly increasing")
    return float(np.trapezoid(ya, xa))


def relative_error_pct(model: float, measured: float) -> float:
    """Absolute percentage difference between model and measurement.

    This is the error the paper's Table 4 reports:
    ``100 * |model - measured| / measured``.
    """
    if measured == 0:
        raise ZeroDivisionError("measured value is zero; relative error undefined")
    return abs(model - measured) / abs(measured) * 100.0


def signed_relative_error_pct(model: float, measured: float) -> float:
    """Signed percentage difference (positive when the model over-predicts)."""
    if measured == 0:
        raise ZeroDivisionError("measured value is zero; relative error undefined")
    return (model - measured) / abs(measured) * 100.0


def bisect_increasing(
    func: Callable[[float], float],
    target: float,
    lo: float,
    hi: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Solve ``func(x) == target`` for a nondecreasing ``func`` on [lo, hi].

    Used to invert queueing CDFs for percentiles.  ``func(lo)`` may exceed
    ``target`` (returns ``lo``); if ``func(hi) < target`` a ``ValueError`` is
    raised — callers are expected to grow the bracket themselves because the
    right scale is problem-specific.
    """
    if hi <= lo:
        raise ValueError(f"invalid bracket [{lo}, {hi}]")
    flo = func(lo)
    if flo >= target:
        return lo
    fhi = func(hi)
    if fhi < target:
        raise ValueError(
            f"func({hi}) = {fhi} is below target {target}; bracket too small"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if func(mid) < target:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty interval [{lo}, {hi}]")
    return min(max(value, lo), hi)


def linspace_utilisation(
    start: float = 0.1, stop: float = 1.0, num: int = 10
) -> np.ndarray:
    """Linearly spaced utilisation grid in (0, 1].

    The paper's single-node plots sample u = 10%, 20%, ..., 100%.
    """
    if not (0.0 < start <= stop <= 1.0):
        raise ValueError("utilisation grid must lie in (0, 1]")
    return np.linspace(start, stop, num)


def logspace_utilisation(
    start: float = 0.01, stop: float = 1.0, num: int = 25
) -> np.ndarray:
    """Log-spaced utilisation grid in (0, 1].

    The paper's cluster-wide plots (Figure 7) use a logarithmic utilisation
    axis from 1% to 100%.
    """
    if not (0.0 < start <= stop <= 1.0):
        raise ValueError("utilisation grid must lie in (0, 1]")
    return np.logspace(np.log10(start), np.log10(stop), num)


def is_monotone_nondecreasing(values: Sequence[float], *, atol: float = 1e-12) -> bool:
    """True when ``values`` never decreases by more than ``atol``."""
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        return True
    return bool(np.all(np.diff(arr) >= -atol))
