"""Plain-text table rendering.

The benchmark harness regenerates the paper's tables as text.  This module
renders aligned ASCII tables and simple key/value blocks without any third
party dependency, so benchmark output remains readable under
``pytest -s`` and when redirected to a file.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "render_kv", "format_number"]


def format_number(value: object, *, digits: int = 4) -> str:
    """Format a cell value for table output.

    Floats use a fixed number of significant digits; very large magnitudes
    switch to thousands separators (the paper prints PPRs like "6,048,057").
    """
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10_000 else str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 10_000:
            return f"{value:,.0f}"
        return f"{value:.{digits}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    digits: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Every row must have exactly ``len(headers)`` cells; raising early beats a
    silently misaligned table in a benchmark log.
    """
    header_cells = [str(h) for h in headers]
    body: list[list[str]] = []
    for row in rows:
        cells = [format_number(c, digits=digits) for c in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(header_cells)}: {cells}"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    rule = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(header_cells))
    lines.append(rule)
    lines.extend(fmt_row(cells) for cells in body)
    return "\n".join(lines)


def render_kv(pairs: Mapping[str, object], *, title: str | None = None) -> str:
    """Render a mapping as an aligned ``key : value`` block."""
    if not pairs:
        return title or ""
    width = max(len(str(k)) for k in pairs)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for key, val in pairs.items():
        lines.append(f"{str(key).ljust(width)} : {format_number(val)}")
    return "\n".join(lines)
