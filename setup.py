"""Thin setuptools shim.

All metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e . --no-use-pep517`` works in offline environments where the
``wheel`` package (required by the PEP 660 editable path of old setuptools)
is unavailable.
"""

from setuptools import setup

setup()
